package mem

import "fmt"

// Watermarks are the per-node free-memory thresholds that drive proactive
// reclaim, following the kernel's min/low/high scheme (§III-C: "a tier is
// marked under memory pressure proactively when it reaches specific
// watermark levels ... calculated according to the amount of memory in the
// tier"). Values are in frames.
type Watermarks struct {
	// Min is the emergency reserve; ordinary allocations below it fail
	// over to other nodes (or trigger direct reclaim).
	Min int
	// Low wakes the reclaim daemon.
	Low int
	// High is where reclaim stops.
	High int
}

// WatermarkConfig expresses watermarks as fractions of a node's frames.
type WatermarkConfig struct {
	MinFrac, LowFrac, HighFrac float64
}

// DefaultWatermarks mirrors the kernel's rough proportions.
func DefaultWatermarks() WatermarkConfig {
	return WatermarkConfig{MinFrac: 0.005, LowFrac: 0.0125, HighFrac: 0.025}
}

func (c WatermarkConfig) compute(frames int) Watermarks {
	w := Watermarks{
		Min:  int(float64(frames) * c.MinFrac),
		Low:  int(float64(frames) * c.LowFrac),
		High: int(float64(frames) * c.HighFrac),
	}
	// Guarantee a sane ordering even on tiny nodes.
	if w.Min < 1 {
		w.Min = 1
	}
	if w.Low <= w.Min {
		w.Low = w.Min + 1
	}
	if w.High <= w.Low {
		w.High = w.Low + 1
	}
	return w
}

// Node is one NUMA node: a bank of frames belonging to a single tier,
// managed by a binary-buddy allocator like a kernel zone. The DAX-KMEM
// driver in the paper hot-plugs PM as new nodes and tags them; here the
// tag is the Tier field.
type Node struct {
	ID     NodeID
	Tier   Tier
	Frames int

	WM Watermarks

	alloc *buddy

	// PhysicalSocket optionally records which socket the node's DIMMs
	// live on; PM nodes get a node ID distinct from their socket (§IV).
	PhysicalSocket int
}

func newNode(id NodeID, tier Tier, frames int, wm WatermarkConfig, socket int) *Node {
	return &Node{
		ID:             id,
		Tier:           tier,
		Frames:         frames,
		WM:             wm.compute(frames),
		alloc:          newBuddy(frames),
		PhysicalSocket: socket,
	}
}

// FreeFrames returns the number of unallocated frames on the node.
func (n *Node) FreeFrames() int { return n.alloc.FreeFrames() }

// UsedFrames returns the number of allocated frames on the node.
func (n *Node) UsedFrames() int { return n.Frames - n.alloc.FreeFrames() }

// FreeBlocks reports the buddy allocator's per-order free block counts
// (fragmentation diagnostics; order MaxOrder blocks are what a THP
// allocation would need).
func (n *Node) FreeBlocks() [MaxOrder + 1]int { return n.alloc.FreeBlocks() }

// UnderLow reports whether free memory has dropped below the low watermark,
// i.e. the node should be marked under memory pressure and reclaim should
// run.
func (n *Node) UnderLow() bool { return n.FreeFrames() < n.WM.Low }

// UnderHigh reports whether free memory is still below the high watermark,
// i.e. reclaim, once started, should continue.
func (n *Node) UnderHigh() bool { return n.FreeFrames() < n.WM.High }

// UnderMin reports whether only the emergency reserve remains.
func (n *Node) UnderMin() bool { return n.FreeFrames() < n.WM.Min }

// allocFrame pops a free frame, or NoFrame when the node is exhausted.
func (n *Node) allocFrame() FrameID { return n.alloc.Alloc(0) }

// freeFrame returns a frame to the allocator (with buddy coalescing).
func (n *Node) freeFrame(f FrameID) {
	if f < 0 || int(f) >= n.Frames {
		panic(fmt.Sprintf("mem: freeing frame %d outside node %d (%d frames)", f, n.ID, n.Frames))
	}
	n.alloc.Free(f, 0)
}

func (n *Node) String() string {
	return fmt.Sprintf("node%d(%s, %d/%d free)", n.ID, n.Tier, n.FreeFrames(), n.Frames)
}
