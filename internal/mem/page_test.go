package mem

import (
	"testing"
	"testing/quick"
)

func TestPageFlagsHas(t *testing.T) {
	var f PageFlags
	f |= FlagActive | FlagReferenced
	if !f.Has(FlagActive) || !f.Has(FlagReferenced) {
		t.Fatal("set flags not reported")
	}
	if f.Has(FlagPromote) {
		t.Fatal("unset flag reported")
	}
	if !f.Has(FlagActive | FlagReferenced) {
		t.Fatal("combined Has failed")
	}
	if f.Has(FlagActive | FlagPromote) {
		t.Fatal("Has must require all bits")
	}
}

func TestPageSetClearFlags(t *testing.T) {
	pg := &Page{}
	pg.SetFlags(FlagDirty | FlagActive)
	if !pg.Flags.Has(FlagDirty | FlagActive) {
		t.Fatal("SetFlags")
	}
	pg.ClearFlags(FlagDirty)
	if pg.Flags.Has(FlagDirty) || !pg.Flags.Has(FlagActive) {
		t.Fatal("ClearFlags")
	}
}

func TestTestAndClearAccessed(t *testing.T) {
	pg := &Page{Accessed: true}
	if !pg.TestAndClearAccessed() {
		t.Fatal("first read should see the bit")
	}
	if pg.TestAndClearAccessed() {
		t.Fatal("bit should be cleared after read")
	}
}

func TestPageListPushPop(t *testing.T) {
	l := &PageList{Name: "test"}
	if !l.Empty() || l.Len() != 0 || l.Front() != nil || l.Back() != nil {
		t.Fatal("fresh list not empty")
	}
	a, b, c := &Page{}, &Page{}, &Page{}
	l.PushFront(a) // [a]
	l.PushFront(b) // [b a]
	l.PushBack(c)  // [b a c]
	if l.Len() != 3 || l.Front() != b || l.Back() != c {
		t.Fatal("push shape wrong")
	}
	if got := l.PopBack(); got != c {
		t.Fatal("PopBack")
	}
	if got := l.PopFront(); got != b {
		t.Fatal("PopFront")
	}
	if got := l.PopBack(); got != a {
		t.Fatal("PopBack last")
	}
	if !l.Empty() || l.PopBack() != nil || l.PopFront() != nil {
		t.Fatal("list should be empty")
	}
}

func TestPageListRemoveMiddle(t *testing.T) {
	l := &PageList{Name: "test"}
	pages := make([]*Page, 5)
	for i := range pages {
		pages[i] = &Page{}
		l.PushBack(pages[i])
	}
	l.Remove(pages[2])
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if pages[2].OnList() {
		t.Fatal("removed page still claims membership")
	}
	// Remaining order preserved.
	want := []*Page{pages[0], pages[1], pages[3], pages[4]}
	i := 0
	l.Each(func(pg *Page) {
		if pg != want[i] {
			t.Fatalf("order broken at %d", i)
		}
		i++
	})
}

func TestPageListMoveToFront(t *testing.T) {
	l := &PageList{Name: "test"}
	a, b, c := &Page{}, &Page{}, &Page{}
	l.PushBack(a)
	l.PushBack(b)
	l.PushBack(c)
	l.MoveToFront(c)
	if l.Front() != c || l.Back() != b || l.Len() != 3 {
		t.Fatal("MoveToFront shape wrong")
	}
}

func TestPageListDoubleInsertPanics(t *testing.T) {
	l := &PageList{Name: "a"}
	m := &PageList{Name: "b"}
	pg := &Page{}
	l.PushBack(pg)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	m.PushBack(pg)
}

func TestPageListForeignRemovePanics(t *testing.T) {
	l := &PageList{Name: "a"}
	m := &PageList{Name: "b"}
	pg := &Page{}
	l.PushBack(pg)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign remove did not panic")
		}
	}()
	m.Remove(pg)
}

func TestEachSafeAllowsRemoval(t *testing.T) {
	l := &PageList{Name: "test"}
	for i := 0; i < 10; i++ {
		l.PushBack(&Page{})
	}
	n := 0
	l.EachSafe(func(pg *Page) {
		l.Remove(pg)
		n++
	})
	if n != 10 || !l.Empty() {
		t.Fatalf("EachSafe visited %d, list len %d", n, l.Len())
	}
}

// Property: any sequence of pushes and pops preserves the page set and the
// deque ordering semantics, modelled against a slice.
func TestPageListDequeProperty(t *testing.T) {
	type op struct {
		Kind uint8
	}
	f := func(ops []op) bool {
		l := &PageList{Name: "prop"}
		var model []*Page
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				pg := &Page{}
				l.PushFront(pg)
				model = append([]*Page{pg}, model...)
			case 1:
				pg := &Page{}
				l.PushBack(pg)
				model = append(model, pg)
			case 2:
				got := l.PopFront()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				got := l.PopBack()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					if got != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
			if l.Len() != len(model) {
				return false
			}
		}
		// Final order agrees.
		i := 0
		ok := true
		l.Each(func(pg *Page) {
			if i >= len(model) || model[i] != pg {
				ok = false
			}
			i++
		})
		return ok && i == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTierString(t *testing.T) {
	if TierDRAM.String() != "DRAM" || TierPM.String() != "PM" {
		t.Fatal("tier names")
	}
	if Tier(9).String() != "Tier(9)" {
		t.Fatal("unknown tier name")
	}
}
