package mem

import (
	"testing"
	"testing/quick"

	"multiclock/internal/sim"
)

func TestBuddyInitCoversAllFrames(t *testing.T) {
	for _, frames := range []int{1, 7, 512, 513, 1000, 4096} {
		b := newBuddy(frames)
		if b.FreeFrames() != frames {
			t.Fatalf("frames=%d: free=%d", frames, b.FreeFrames())
		}
		total := 0
		for o, n := range b.FreeBlocks() {
			total += n << o
		}
		if total != frames {
			t.Fatalf("frames=%d: blocks cover %d", frames, total)
		}
	}
}

func TestBuddyAllocOrder0(t *testing.T) {
	b := newBuddy(16)
	seen := map[FrameID]bool{}
	for i := 0; i < 16; i++ {
		f := b.Alloc(0)
		if f == NoFrame {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[f] {
			t.Fatalf("frame %d handed out twice", f)
		}
		seen[f] = true
	}
	if b.Alloc(0) != NoFrame {
		t.Fatal("alloc on exhausted allocator succeeded")
	}
	if b.FreeFrames() != 0 {
		t.Fatal("free count")
	}
}

func TestBuddyLowFramesFirst(t *testing.T) {
	b := newBuddy(1024)
	if f := b.Alloc(0); f != 0 {
		t.Fatalf("first frame = %d, want 0", f)
	}
	if f := b.Alloc(0); f != 1 {
		t.Fatalf("second frame = %d, want 1", f)
	}
}

func TestBuddySplitAndCoalesce(t *testing.T) {
	b := newBuddy(512)
	// One order-0 alloc splits the order-9 block into 0..8 remainders.
	f := b.Alloc(0)
	blocks := b.FreeBlocks()
	if blocks[MaxOrder] != 0 {
		t.Fatal("order-9 block survived a split")
	}
	for o := 0; o < MaxOrder; o++ {
		if blocks[o] != 1 {
			t.Fatalf("after split, order %d has %d blocks, want 1", o, blocks[o])
		}
	}
	// Freeing coalesces all the way back to one order-9 block.
	b.Free(f, 0)
	blocks = b.FreeBlocks()
	if blocks[MaxOrder] != 1 {
		t.Fatalf("coalescing failed: %v", blocks)
	}
	for o := 0; o < MaxOrder; o++ {
		if blocks[o] != 0 {
			t.Fatalf("leftover order-%d blocks: %v", o, blocks)
		}
	}
}

func TestBuddyHugeAlloc(t *testing.T) {
	b := newBuddy(2048)
	f := b.Alloc(MaxOrder) // a 2 MiB "huge page"
	if f == NoFrame || int(f)&(1<<MaxOrder-1) != 0 {
		t.Fatalf("huge alloc at %d (misaligned or failed)", f)
	}
	if b.FreeFrames() != 2048-512 {
		t.Fatal("free accounting")
	}
	b.Free(f, MaxOrder)
	if b.FreeFrames() != 2048 {
		t.Fatal("huge free accounting")
	}
}

func TestBuddyFragmentationBlocksHugeAllocs(t *testing.T) {
	b := newBuddy(512)
	// Allocate every frame, free every other one: no order-1 block exists.
	var frames []FrameID
	for {
		f := b.Alloc(0)
		if f == NoFrame {
			break
		}
		frames = append(frames, f)
	}
	for i := 0; i < len(frames); i += 2 {
		b.Free(frames[i], 0)
	}
	if b.FreeFrames() != 256 {
		t.Fatal("half should be free")
	}
	if b.Alloc(1) != NoFrame {
		t.Fatal("order-1 alloc satisfied despite full fragmentation")
	}
	// Freeing the other half heals everything.
	for i := 1; i < len(frames); i += 2 {
		b.Free(frames[i], 0)
	}
	if b.FreeBlocks()[MaxOrder] != 1 {
		t.Fatal("full coalescing after heal failed")
	}
}

func TestBuddyDoubleFreePanics(t *testing.T) {
	b := newBuddy(16)
	f := b.Alloc(0)
	b.Free(f, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Free(f, 0)
}

func TestBuddyMisalignedFreePanics(t *testing.T) {
	b := newBuddy(16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Free(1, 1)
}

func TestBuddyBadOrderPanics(t *testing.T) {
	b := newBuddy(16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b.Alloc(MaxOrder + 1)
}

// Property: arbitrary alloc/free sequences conserve frames and never hand
// out overlapping blocks.
func TestBuddyConservationProperty(t *testing.T) {
	type op struct {
		Alloc bool
		Order uint8
	}
	f := func(ops []op, seed uint64) bool {
		const frames = 1024
		b := newBuddy(frames)
		rng := sim.NewRNG(seed)
		type block struct {
			f     FrameID
			order int
		}
		var live []block
		owner := make([]int, frames) // 0 = free, else block id
		nextID := 1
		for _, o := range ops {
			if o.Alloc || len(live) == 0 {
				order := int(o.Order) % (MaxOrder + 1)
				f := b.Alloc(order)
				if f == NoFrame {
					continue
				}
				for i := int(f); i < int(f)+(1<<order); i++ {
					if owner[i] != 0 {
						return false // overlap!
					}
					owner[i] = nextID
				}
				nextID++
				live = append(live, block{f, order})
			} else {
				i := rng.Intn(len(live))
				blk := live[i]
				b.Free(blk.f, blk.order)
				for j := int(blk.f); j < int(blk.f)+(1<<blk.order); j++ {
					owner[j] = 0
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			// Conservation.
			used := 0
			for _, blk := range live {
				used += 1 << blk.order
			}
			if b.FreeFrames() != frames-used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: free-list metadata always covers exactly the free frames.
func TestBuddyMetadataConsistencyProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		frames := int(n%2000) + 64
		b := newBuddy(frames)
		rng := sim.NewRNG(seed)
		var held []FrameID
		for i := 0; i < 500; i++ {
			if rng.Intn(2) == 0 {
				if f := b.Alloc(0); f != NoFrame {
					held = append(held, f)
				}
			} else if len(held) > 0 {
				j := rng.Intn(len(held))
				b.Free(held[j], 0)
				held[j] = held[len(held)-1]
				held = held[:len(held)-1]
			}
			total := 0
			for o, cnt := range b.FreeBlocks() {
				total += cnt << o
			}
			if total != b.FreeFrames() {
				return false
			}
		}
		return b.FreeFrames() == frames-len(held)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
