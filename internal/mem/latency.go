package mem

import "multiclock/internal/sim"

// LatencyModel gives the virtual-time cost of every memory-system operation.
// The defaults are calibrated to published DRAM vs. Intel Optane DCPMM
// measurements: PM byte-addressable latency "within an order of magnitude of
// DRAM" (§I) with asymmetric reads and writes (§VII). Absolute values do not
// need to match the authors' testbed — only the ratios shape the results.
type LatencyModel struct {
	// Read and Write are per-tier access latencies for one page-granular
	// application access (a cache-missing load or store), indexed by Tier
	// and sized to the system's topology.
	Read  []sim.Duration
	Write []sim.Duration

	// PageCopy is the topology-sized cost matrix of migrating one page
	// from tier src to tier dst: allocation, 4 KiB copy, and remapping
	// (migrate_pages).
	PageCopy [][]sim.Duration

	// MigrationTax is the portion of a migration charged to the
	// application timeline (TLB shootdown, page-table locking) even when
	// the copy itself runs on a daemon.
	MigrationTax sim.Duration

	// MinorFault is the cost of a first-touch fault allocating a page.
	MinorFault sim.Duration

	// HintFault is the cost of a software hint page fault used by
	// PTE-poisoning access trackers (AutoTiering/Thermostat-style); the
	// paper names this overhead as those systems' key weakness (§II-D).
	HintFault sim.Duration

	// SwapOut is the cost of writing a page to backing storage when the
	// lowest tier itself is under pressure (§III-C last resort).
	SwapOut sim.Duration

	// SwapIn is the major-fault cost of reading a swapped page back from
	// backing storage.
	SwapIn sim.Duration

	// DaemonScanPage is the daemon-side CPU cost of examining one page
	// during a list scan; it bounds how much scanning a wakeup can do.
	DaemonScanPage sim.Duration

	// DaemonWakeup is the fixed cost of one daemon wakeup (scheduling,
	// cache disturbance, LRU lock acquisition). Frequent wakeups pay it
	// often — the "excessive context switches" the paper warns about
	// when kpromoted is scheduled too aggressively (§III-B).
	DaemonWakeup sim.Duration
}

// DefaultLatency returns the calibrated model used throughout the
// evaluation, sized for the default two-tier (DRAM + PM) topology. The
// per-tier numbers are the builtin dram/pm tier specs (DRAM 80/90 ns, PM
// 300/450 ns, page copies of 1.2 µs DRAM↔DRAM and 3 µs touching PM —
// 4 KiB over the slower end's bandwidth plus fixed remap overhead).
func DefaultLatency() LatencyModel {
	return DefaultTopology([]int{1}, []int{1}).Latency(defaultScalarLatency())
}

// defaultScalarLatency returns the tier-independent calibrated costs.
func defaultScalarLatency() LatencyModel {
	var m LatencyModel
	// Migrating a mapped page interrupts the application for page-table
	// locking and TLB shootdown IPIs on every core — microseconds of
	// application time per page, which is why unselective promotion is
	// expensive (the paper's §V-D observation, and Nimble's own
	// motivation).
	m.MigrationTax = 2 * sim.Microsecond
	m.MinorFault = 1500 * sim.Nanosecond
	m.HintFault = 2500 * sim.Nanosecond
	m.SwapOut = 25 * sim.Microsecond
	m.SwapIn = 60 * sim.Microsecond // NVMe-SSD major fault
	m.DaemonScanPage = 150 * sim.Nanosecond
	m.DaemonWakeup = 20 * sim.Microsecond
	return m
}

// resizeLatency returns a copy of m whose per-tier slices are sized to n
// tiers, keeping any values present and zero-filling the rest — the exact
// semantics a partially specified fixed-array model used to have.
func resizeLatency(m LatencyModel, n int) LatencyModel {
	read := make([]sim.Duration, n)
	copy(read, m.Read)
	write := make([]sim.Duration, n)
	copy(write, m.Write)
	pc := make([][]sim.Duration, n)
	for i := range pc {
		pc[i] = make([]sim.Duration, n)
		if i < len(m.PageCopy) {
			copy(pc[i], m.PageCopy[i])
		}
	}
	m.Read, m.Write, m.PageCopy = read, write, pc
	return m
}

// AccessCost returns the latency of one application access to tier t.
func (m *LatencyModel) AccessCost(t Tier, write bool) sim.Duration {
	if write {
		return m.Write[t]
	}
	return m.Read[t]
}
