package mem

import "multiclock/internal/sim"

// LatencyModel gives the virtual-time cost of every memory-system operation.
// The defaults are calibrated to published DRAM vs. Intel Optane DCPMM
// measurements: PM byte-addressable latency "within an order of magnitude of
// DRAM" (§I) with asymmetric reads and writes (§VII). Absolute values do not
// need to match the authors' testbed — only the ratios shape the results.
type LatencyModel struct {
	// Read and Write are per-tier access latencies for one page-granular
	// application access (a cache-missing load or store).
	Read  [NumTiers]sim.Duration
	Write [NumTiers]sim.Duration

	// PageCopy is the cost of migrating one page from tier src to tier
	// dst: allocation, 4 KiB copy, and remapping (migrate_pages).
	PageCopy [NumTiers][NumTiers]sim.Duration

	// MigrationTax is the portion of a migration charged to the
	// application timeline (TLB shootdown, page-table locking) even when
	// the copy itself runs on a daemon.
	MigrationTax sim.Duration

	// MinorFault is the cost of a first-touch fault allocating a page.
	MinorFault sim.Duration

	// HintFault is the cost of a software hint page fault used by
	// PTE-poisoning access trackers (AutoTiering/Thermostat-style); the
	// paper names this overhead as those systems' key weakness (§II-D).
	HintFault sim.Duration

	// SwapOut is the cost of writing a page to backing storage when the
	// lowest tier itself is under pressure (§III-C last resort).
	SwapOut sim.Duration

	// SwapIn is the major-fault cost of reading a swapped page back from
	// backing storage.
	SwapIn sim.Duration

	// DaemonScanPage is the daemon-side CPU cost of examining one page
	// during a list scan; it bounds how much scanning a wakeup can do.
	DaemonScanPage sim.Duration

	// DaemonWakeup is the fixed cost of one daemon wakeup (scheduling,
	// cache disturbance, LRU lock acquisition). Frequent wakeups pay it
	// often — the "excessive context switches" the paper warns about
	// when kpromoted is scheduled too aggressively (§III-B).
	DaemonWakeup sim.Duration
}

// DefaultLatency returns the calibrated model used throughout the
// evaluation.
func DefaultLatency() LatencyModel {
	var m LatencyModel
	m.Read[TierDRAM] = 80 * sim.Nanosecond
	m.Write[TierDRAM] = 90 * sim.Nanosecond
	// Optane: random read ≈ 3-4× DRAM; writes costlier still once the
	// write-pending queue backs up.
	m.Read[TierPM] = 300 * sim.Nanosecond
	m.Write[TierPM] = 450 * sim.Nanosecond

	copyCost := func(src, dst Tier) sim.Duration {
		// 4 KiB over the slower of the two tiers' bandwidth plus fixed
		// remap overhead. DRAM→DRAM ≈ 1.2 µs, anything touching PM ≈ 3 µs.
		if src == TierPM || dst == TierPM {
			return 3 * sim.Microsecond
		}
		return 1200 * sim.Nanosecond
	}
	for s := Tier(0); s < NumTiers; s++ {
		for d := Tier(0); d < NumTiers; d++ {
			m.PageCopy[s][d] = copyCost(s, d)
		}
	}
	// Migrating a mapped page interrupts the application for page-table
	// locking and TLB shootdown IPIs on every core — microseconds of
	// application time per page, which is why unselective promotion is
	// expensive (the paper's §V-D observation, and Nimble's own
	// motivation).
	m.MigrationTax = 2 * sim.Microsecond
	m.MinorFault = 1500 * sim.Nanosecond
	m.HintFault = 2500 * sim.Nanosecond
	m.SwapOut = 25 * sim.Microsecond
	m.SwapIn = 60 * sim.Microsecond // NVMe-SSD major fault
	m.DaemonScanPage = 150 * sim.Nanosecond
	m.DaemonWakeup = 20 * sim.Microsecond
	return m
}

// AccessCost returns the latency of one application access to tier t.
func (m *LatencyModel) AccessCost(t Tier, write bool) sim.Duration {
	if write {
		return m.Write[t]
	}
	return m.Read[t]
}
