// Package mem models the physical side of a hybrid (DRAM + persistent
// memory) machine: NUMA nodes that each belong to a memory tier, physical
// frames with free-list allocation and watermark-based pressure levels, page
// descriptors (the analogue of Linux's struct page), page migration between
// nodes, a calibrated latency model for the tiers, and vmstat-style event
// counters.
//
// The package corresponds to the parts of the paper's prototype that live in
// mm/page_alloc.c, include/linux/mmzone.h and the DAX-KMEM driver tagging of
// persistent-memory nodes (MULTI-CLOCK §IV): PM capacity is exposed as
// additional NUMA nodes whose pglist_data carries a tier tag.
package mem

import (
	"fmt"

	"multiclock/internal/sim"
)

// PageSize is the size of a page/frame in bytes (4 KiB, matching the
// paper's base pages; MULTI-CLOCK handles all page types, §II-D Table I).
const PageSize = 4096

// Tier identifies a memory tier, ordered from highest performing (lowest
// value) to lowest performing.
type Tier int8

const (
	// TierDRAM is the high-performance, low-capacity tier — always tier 0
	// (the fastest tier) of the default two-tier topology.
	TierDRAM Tier = iota
	// TierPM is the persistent-memory tier: higher capacity, higher
	// latency, asymmetric reads and writes (Intel Optane DCPMM-like) —
	// tier 1 of the default two-tier topology. Deeper hierarchies are
	// described by a Topology; code that must work on any hierarchy
	// navigates tier-relatively (System.Above/Below/FastestTier) instead
	// of naming tiers.
	TierPM
)

// String returns the conventional name of the tier under the default
// two-tier topology; System.TierName resolves names for any hierarchy.
func (t Tier) String() string {
	switch t {
	case TierDRAM:
		return "DRAM"
	case TierPM:
		return "PM"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// NodeID names a NUMA node within a System.
type NodeID int32

// NoNode is the invalid node ID.
const NoNode NodeID = -1

// FrameID is a physical frame number within its node.
type FrameID int32

// NoFrame is the invalid frame number.
const NoFrame FrameID = -1

// PageFlags is the page descriptor flag word, mirroring the kernel's
// page->flags. MULTI-CLOCK adds PagePromote to the standard set (§IV).
type PageFlags uint16

const (
	// FlagLRU is set while the page sits on one of the LRU lists.
	FlagLRU PageFlags = 1 << iota
	// FlagActive marks pages on an active list.
	FlagActive
	// FlagReferenced is the software referenced flag maintained by
	// mark_page_accessed-style aging (distinct from the hardware
	// accessed bit below).
	FlagReferenced
	// FlagPromote is MULTI-CLOCK's new flag: the page belongs to the
	// promote list and is a candidate for migration to a higher tier.
	FlagPromote
	// FlagDirty tracks whether the page has been written since the last
	// cleaning; demoting or swapping a dirty page costs a writeback.
	FlagDirty
	// FlagUnevictable pins the page (mlock); it can be neither evicted
	// nor migrated.
	FlagUnevictable
	// FlagFile marks file-backed pages; unset means anonymous.
	FlagFile
	// FlagIsolated is set while the page is detached from the LRU for
	// migration, preventing concurrent list manipulation.
	FlagIsolated
	// FlagPoisoned marks a PTE-poisoned page used by hint-page-fault
	// access tracking (AutoTiering/Thermostat-style baselines); the next
	// access takes a software fault.
	FlagPoisoned
)

// Has reports whether all bits in f are set.
func (p PageFlags) Has(f PageFlags) bool { return p&f == f }

// Page is a page descriptor: one logical page of application memory. Unlike
// the kernel, which has one struct page per physical frame, the simulator
// keeps the descriptor stable across migration and updates its (Node, Frame)
// placement — external references (page tables, LRU lists, policy state)
// remain valid, which is exactly what migrate_pages achieves by remapping.
type Page struct {
	Node  NodeID
	Frame FrameID
	Flags PageFlags

	// Seq is the descriptor's birth sequence number, stamped once by the
	// owning System and never reused. Descriptor creation order is
	// deterministic, so Seq is a stable cross-run page identity — the
	// checkpoint layer serializes every pointer to a page as its Seq.
	Seq uint64

	// Order is the compound-page order: 0 for a base page, MaxOrder (9)
	// for a 2 MiB transparent huge page. The descriptor covers
	// 2^Order frames starting at Frame, like a compound head page.
	Order uint8

	// VA and Space back-reference the single virtual mapping (our rmap).
	VA    uint64
	Space int32

	// Accessed and HWDirty model the hardware PTE accessed/dirty bits the
	// CPU sets on load/store. MULTI-CLOCK's scanners read and clear the
	// accessed bit to detect unsupervised accesses (§III-A.2).
	Accessed bool
	HWDirty  bool

	// BornAt is the virtual time of first allocation (page "birth").
	BornAt sim.Time

	// Hist is scratch space for policies that keep per-page history
	// (AutoTiering-OPM's N-bit coldness vector).
	Hist uint8
	// LastHint is the virtual time of the last hint page fault taken on
	// this page (software-fault access tracking baselines).
	LastHint sim.Time

	// Freq and LastUse are emulator-style full profiling scratch: exact
	// per-page access counts and timestamps. Real kernels cannot afford
	// them (the paper's argument against LFU, §II-D); the AMP baseline —
	// which was designed on an emulator — uses them here.
	Freq    uint32
	LastUse sim.Time

	// PromotedAt is the virtual time of the page's most recent promotion,
	// or 0 if never promoted; used by re-access telemetry (Fig. 9).
	PromotedAt sim.Time

	// CacheHint is scratch owned by the machine's CPU-cache model: slot
	// index + 1 of this page's base frame in the cache slab, 0 when not
	// cached. It lets the access fast path skip a map lookup entirely.
	CacheHint int32

	// ShadowNode/ShadowFrame record a retained lower-tier copy of the
	// page's contents (Nomad-style non-exclusive tiering): after
	// PromoteWithShadow the old frame stays allocated as a shadow instead
	// of being freed, so a still-clean page can later be demoted for free
	// by remapping to it (DemoteToShadow). Any write invalidates the
	// shadow; the owning policy must DropShadow before or at the write.
	// ShadowNode is NoNode when the page has no shadow.
	ShadowNode  NodeID
	ShadowFrame FrameID

	prev, next *Page
	list       *PageList
}

// Tier reports the tier of the node currently holding the page. It requires
// the owning System for the node→tier mapping.
func (s *System) Tier(pg *Page) Tier { return s.Nodes[pg.Node].Tier }

// Frames returns the number of physical frames the descriptor covers.
func (pg *Page) Frames() int { return 1 << pg.Order }

// IsHuge reports whether this is a compound (huge) page.
func (pg *Page) IsHuge() bool { return pg.Order > 0 }

// OnList reports whether the page currently sits on a PageList.
func (pg *Page) OnList() bool { return pg.list != nil }

// Next returns the page following pg on its list (toward the tail), or nil.
func (pg *Page) Next() *Page { return pg.next }

// Prev returns the page preceding pg on its list (toward the head), or nil.
func (pg *Page) Prev() *Page { return pg.prev }

// List returns the list currently holding the page, or nil.
func (pg *Page) List() *PageList { return pg.list }

// IsFile reports whether the page is file-backed.
func (pg *Page) IsFile() bool { return pg.Flags.Has(FlagFile) }

// HasShadow reports whether the page retains a lower-tier shadow copy.
func (pg *Page) HasShadow() bool { return pg.ShadowNode != NoNode }

// SetFlags sets the given flag bits.
func (pg *Page) SetFlags(f PageFlags) { pg.Flags |= f }

// ClearFlags clears the given flag bits.
func (pg *Page) ClearFlags(f PageFlags) { pg.Flags &^= f }

// TestAndClearAccessed returns the hardware accessed bit and clears it,
// mirroring ptep_test_and_clear_young. This is how the CLOCK hand observes
// unsupervised (mmap'd) accesses.
func (pg *Page) TestAndClearAccessed() bool {
	a := pg.Accessed
	pg.Accessed = false
	return a
}

// PageList is an intrusive doubly-linked list of pages, the analogue of the
// kernel's list_head LRU lists. A page can be on at most one list; the list
// tracks membership so moves are O(1) and double-insertion panics loudly.
type PageList struct {
	head, tail *Page
	size       int
	// Name identifies the list in diagnostics (e.g. "anon_promote").
	Name string
}

// Len returns the number of pages on the list.
func (l *PageList) Len() int { return l.size }

// Empty reports whether the list has no pages.
func (l *PageList) Empty() bool { return l.size == 0 }

// Front returns the page at the head (most recently added by PushFront), or
// nil if empty.
func (l *PageList) Front() *Page { return l.head }

// Back returns the page at the tail (the CLOCK hand scans from here), or nil
// if empty.
func (l *PageList) Back() *Page { return l.tail }

// PushFront inserts pg at the head. The page must not be on any list.
func (l *PageList) PushFront(pg *Page) {
	l.checkFree(pg)
	pg.list = l
	pg.prev = nil
	pg.next = l.head
	if l.head != nil {
		l.head.prev = pg
	} else {
		l.tail = pg
	}
	l.head = pg
	l.size++
}

// PushBack inserts pg at the tail. The page must not be on any list.
func (l *PageList) PushBack(pg *Page) {
	l.checkFree(pg)
	pg.list = l
	pg.next = nil
	pg.prev = l.tail
	if l.tail != nil {
		l.tail.next = pg
	} else {
		l.head = pg
	}
	l.tail = pg
	l.size++
}

// Remove unlinks pg from this list. It panics if the page is on a different
// list or on none, which would indicate corrupted LRU state.
func (l *PageList) Remove(pg *Page) {
	if pg.list != l {
		panic(fmt.Sprintf("mem: Remove from %q but page is on %v", l.Name, listName(pg.list)))
	}
	if pg.prev != nil {
		pg.prev.next = pg.next
	} else {
		l.head = pg.next
	}
	if pg.next != nil {
		pg.next.prev = pg.prev
	} else {
		l.tail = pg.prev
	}
	pg.prev, pg.next, pg.list = nil, nil, nil
	l.size--
}

// PopBack removes and returns the tail page, or nil if empty.
func (l *PageList) PopBack() *Page {
	pg := l.tail
	if pg != nil {
		l.Remove(pg)
	}
	return pg
}

// PopFront removes and returns the head page, or nil if empty.
func (l *PageList) PopFront() *Page {
	pg := l.head
	if pg != nil {
		l.Remove(pg)
	}
	return pg
}

// MoveToFront rotates pg (already on this list) to the head, the CLOCK
// second-chance action.
func (l *PageList) MoveToFront(pg *Page) {
	l.Remove(pg)
	l.PushFront(pg)
}

// Each calls fn for every page from head to tail. fn must not mutate the
// list; use EachSafe when removal during iteration is needed.
func (l *PageList) Each(fn func(*Page)) {
	for pg := l.head; pg != nil; pg = pg.next {
		fn(pg)
	}
}

// EachSafe iterates head→tail, tolerating removal of the current page by fn.
func (l *PageList) EachSafe(fn func(*Page)) {
	for pg := l.head; pg != nil; {
		next := pg.next
		fn(pg)
		pg = next
	}
}

func (l *PageList) checkFree(pg *Page) {
	if pg.list != nil {
		panic(fmt.Sprintf("mem: page already on list %q, inserting into %q", listName(pg.list), l.Name))
	}
}

func listName(l *PageList) string {
	if l == nil {
		return "<none>"
	}
	return l.Name
}
