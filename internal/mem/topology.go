package mem

import (
	"fmt"
	"strings"

	"multiclock/internal/sim"
)

// TierSpec describes one tier of a memory hierarchy: its canonical name,
// the frame count of each NUMA node backing it, calibrated per-access
// latencies (asymmetric reads and writes), and the per-page migration cost
// when a copy touches the tier. The Durable flag marks a storage-backed
// last tier that subsumes the swap path: it has no frame-backed nodes, and
// "demoting" a page into it is a swap-out (its Write latency) while
// touching a page resident there is a major fault (its Read latency).
type TierSpec struct {
	// Name is the canonical lower-case tier label ("dram", "cxl", "pm",
	// "ssd"); reports display it upper-cased and metrics use it verbatim.
	Name string
	// Nodes gives the frame count of each NUMA node in the tier. A durable
	// tier has none.
	Nodes []int
	// Read and Write are the per-access latencies of the tier (for a
	// durable tier: the major-fault and swap-out costs).
	Read  sim.Duration
	Write sim.Duration
	// CopyCost is the per-page migration cost when a copy touches this
	// tier; the cost of moving a page between two tiers is the slower of
	// the two ends (see Topology.Latency).
	CopyCost sim.Duration
	// Durable marks the storage-backed last tier (see the type comment).
	Durable bool
}

// Topology is an ordered memory hierarchy, fastest tier first. Tier t of a
// System built from it is Tiers[t]; all tier-relative navigation
// (Above/Below, PickNodeAbove/Below) walks this order.
type Topology struct {
	Tiers []TierSpec
}

// BuiltinTiers lists the tier names the -tiers spec accepts, in their
// canonical fast-to-slow order.
var BuiltinTiers = []string{"dram", "cxl", "pm", "ssd"}

// BuiltinTierSpec returns the calibrated spec for a known tier name (with
// no nodes attached yet). The dram and pm numbers are the two-tier
// defaults the whole evaluation is calibrated against; cxl models
// CXL-attached DRAM at ~2.5× local latency (interposed between DRAM and
// PM); ssd is the durable swap tier, whose read/write costs are exactly
// the default model's major-fault and swap-out costs.
func BuiltinTierSpec(name string) (TierSpec, bool) {
	switch name {
	case "dram":
		return TierSpec{Name: "dram", Read: 80 * sim.Nanosecond, Write: 90 * sim.Nanosecond,
			CopyCost: 1200 * sim.Nanosecond}, true
	case "cxl":
		return TierSpec{Name: "cxl", Read: 200 * sim.Nanosecond, Write: 250 * sim.Nanosecond,
			CopyCost: 2 * sim.Microsecond}, true
	case "pm":
		return TierSpec{Name: "pm", Read: 300 * sim.Nanosecond, Write: 450 * sim.Nanosecond,
			CopyCost: 3 * sim.Microsecond}, true
	case "ssd":
		return TierSpec{Name: "ssd", Read: 60 * sim.Microsecond, Write: 25 * sim.Microsecond,
			CopyCost: 25 * sim.Microsecond, Durable: true}, true
	}
	return TierSpec{}, false
}

// DefaultTopology returns the calibrated two-tier hierarchy (one DRAM node
// over one PM node) every legacy Config maps onto.
func DefaultTopology(dramNodes, pmNodes []int) Topology {
	dram, _ := BuiltinTierSpec("dram")
	pm, _ := BuiltinTierSpec("pm")
	dram.Nodes = dramNodes
	pm.Nodes = pmNodes
	return Topology{Tiers: []TierSpec{dram, pm}}
}

// Validate checks the structural rules of a hierarchy: at least one
// frame-backed tier, unique non-empty names, positive frame counts, and a
// durable tier only in last position (with no frame-backed nodes).
func (top Topology) Validate() error {
	if len(top.Tiers) == 0 {
		return fmt.Errorf("topology has no tiers")
	}
	seen := make(map[string]bool, len(top.Tiers))
	frameBacked := 0
	for i, ts := range top.Tiers {
		if ts.Name == "" {
			return fmt.Errorf("tier %d has no name", i)
		}
		if seen[ts.Name] {
			return fmt.Errorf("duplicate tier %q", ts.Name)
		}
		seen[ts.Name] = true
		if ts.Durable {
			if i != len(top.Tiers)-1 {
				return fmt.Errorf("durable tier %q must be the last tier", ts.Name)
			}
			if len(ts.Nodes) != 0 {
				return fmt.Errorf("durable tier %q cannot have frame-backed nodes", ts.Name)
			}
			continue
		}
		if len(ts.Nodes) == 0 {
			return fmt.Errorf("tier %q has no nodes", ts.Name)
		}
		for _, f := range ts.Nodes {
			if f <= 0 {
				return fmt.Errorf("tier %q needs a positive frame count", ts.Name)
			}
		}
		frameBacked++
	}
	if frameBacked == 0 {
		return fmt.Errorf("topology has no frame-backed tier")
	}
	if top.Tiers[0].Durable {
		return fmt.Errorf("fastest tier %q cannot be durable", top.Tiers[0].Name)
	}
	return nil
}

// Spec renders the topology in the -tiers syntax ("dram:1024,pm:4096",
// durable tiers as "ssd:*"); multi-node tiers repeat the name per node.
func (top Topology) Spec() string {
	var b strings.Builder
	for _, ts := range top.Tiers {
		if ts.Durable {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ts.Name + ":*")
			continue
		}
		for _, f := range ts.Nodes {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%d", ts.Name, f)
		}
	}
	return b.String()
}

// Latency builds a latency model for the hierarchy: per-tier read/write
// arrays and the topology-sized page-copy matrix from the specs (the cost
// of a copy is the slower of its two ends), with every scalar cost taken
// from base. A durable last tier additionally overrides the swap costs:
// swap-out is its write, the major fault its read.
func (top Topology) Latency(base LatencyModel) LatencyModel {
	m := base
	n := len(top.Tiers)
	m.Read = make([]sim.Duration, n)
	m.Write = make([]sim.Duration, n)
	m.PageCopy = make([][]sim.Duration, n)
	for i, ts := range top.Tiers {
		m.Read[i] = ts.Read
		m.Write[i] = ts.Write
		m.PageCopy[i] = make([]sim.Duration, n)
		for j, other := range top.Tiers {
			c := ts.CopyCost
			if other.CopyCost > c {
				c = other.CopyCost
			}
			m.PageCopy[i][j] = c
		}
		if ts.Durable {
			m.SwapOut = ts.Write
			m.SwapIn = ts.Read
		}
	}
	return m
}
