package mem

import (
	"fmt"
	"sort"

	"multiclock/internal/sim"
	"multiclock/internal/snapcodec"
)

// Checkpoint serialization for the memory system. The "mem" section carries
// the frame-allocation state (per-node buddy free lists), the event
// counters, the shadow-frame count and the descriptor sequence counter.
// Page descriptors themselves are serialized by the layers that own their
// reachability (the LRU lists, the swap map, policy state), each as a full
// PageState record keyed by Page.Seq.
//
// The buddy free lists are encoded sorted per order: every allocator
// operation is value-addressed (Alloc pops the minimum block, removeFrom
// searches by frame), so the lists have set semantics and the canonical
// sorted form both hashes stably and restores to behaviorally identical
// state.

// TopologyMismatchError reports a snapshot taken under a different tier
// hierarchy than the restore target's. The snapshot layer converts it to
// its ConfigMismatchError.
type TopologyMismatchError struct{ Reason string }

func (e *TopologyMismatchError) Error() string { return "topology mismatch: " + e.Reason }

// encodeTopology writes the tier-hierarchy header of the mem section.
func (s *System) encodeTopology(enc *snapcodec.Encoder) {
	enc.Int(len(s.Top.Tiers))
	for _, ts := range s.Top.Tiers {
		enc.String(ts.Name)
		enc.Bool(ts.Durable)
		enc.Int(len(ts.Nodes))
		for _, f := range ts.Nodes {
			enc.Int(f)
		}
	}
}

// checkTopology decodes the tier-hierarchy header and compares it against
// the target's own topology; any skew is a TopologyMismatchError.
func (s *System) checkTopology(dec *snapcodec.Decoder) error {
	n := dec.Int()
	if dec.Err() != nil {
		return dec.Err()
	}
	if n != len(s.Top.Tiers) {
		return &TopologyMismatchError{Reason: fmt.Sprintf("snapshot has %d tiers, target has %d", n, len(s.Top.Tiers))}
	}
	for _, ts := range s.Top.Tiers {
		name := dec.String()
		durable := dec.Bool()
		nodes := dec.Int()
		if dec.Err() != nil {
			return dec.Err()
		}
		if name != ts.Name || durable != ts.Durable {
			return &TopologyMismatchError{Reason: fmt.Sprintf("snapshot tier %q (durable=%v), target tier %q (durable=%v)",
				name, durable, ts.Name, ts.Durable)}
		}
		if nodes != len(ts.Nodes) {
			return &TopologyMismatchError{Reason: fmt.Sprintf("tier %q has %d nodes in snapshot, %d in target", name, nodes, len(ts.Nodes))}
		}
		for i, want := range ts.Nodes {
			got := dec.Int()
			if dec.Err() != nil {
				return dec.Err()
			}
			if got != want {
				return &TopologyMismatchError{Reason: fmt.Sprintf("tier %q node %d sized %d in snapshot, %d in target", name, i, got, want)}
			}
		}
	}
	return nil
}

// SnapshotState encodes the mem section: the tier-hierarchy header first
// (restore cross-checks it), then the mutable state.
func (s *System) SnapshotState(enc *snapcodec.Encoder) {
	s.encodeTopology(enc)
	enc.U64(s.pageSeq)
	enc.Int(s.shadowFrames)
	s.Counters.encode(enc)
	enc.Int(len(s.Nodes))
	for _, n := range s.Nodes {
		enc.Int(n.Frames)
		n.alloc.snapshot(enc)
	}
}

// RestoreState decodes the mem section into a freshly constructed System of
// the same configuration (all frames free, zero counters).
func (s *System) RestoreState(dec *snapcodec.Decoder) error {
	if err := s.checkTopology(dec); err != nil {
		return err
	}
	s.pageSeq = dec.U64()
	s.shadowFrames = dec.Int()
	s.Counters.decode(dec)
	if n := dec.Int(); n != len(s.Nodes) {
		if dec.Err() != nil {
			return dec.Err()
		}
		return fmt.Errorf("mem: snapshot has %d nodes, system has %d", n, len(s.Nodes))
	}
	for _, n := range s.Nodes {
		if f := dec.Int(); f != n.Frames {
			if dec.Err() != nil {
				return dec.Err()
			}
			return fmt.Errorf("mem: node %d sized %d in snapshot, %d in system", n.ID, f, n.Frames)
		}
		if err := n.alloc.restore(dec); err != nil {
			return err
		}
	}
	return dec.Err()
}

// snapshot encodes the allocator's free lists, sorted per order.
func (b *buddy) snapshot(enc *snapcodec.Encoder) {
	for order := 0; order <= MaxOrder; order++ {
		list := append([]FrameID(nil), b.free[order]...)
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		enc.Int(len(list))
		for _, f := range list {
			enc.U32(uint32(f))
		}
	}
}

// restore rebuilds the allocator from encoded free lists: everything not on
// a free list is allocated. The derived state/nfree/perOrder views are
// recomputed rather than trusted from the wire.
func (b *buddy) restore(dec *snapcodec.Decoder) error {
	for i := range b.state {
		b.state[i] = stateAllocated
	}
	for order := range b.free {
		b.free[order] = b.free[order][:0]
		b.perOrder[order] = 0
	}
	b.nfree = 0
	for order := 0; order <= MaxOrder; order++ {
		n := dec.Int()
		if dec.Err() != nil {
			return dec.Err()
		}
		if n < 0 || n > b.frames {
			return fmt.Errorf("mem: buddy order-%d free list of %d blocks", order, n)
		}
		for i := 0; i < n; i++ {
			f := FrameID(dec.U32())
			if dec.Err() != nil {
				return dec.Err()
			}
			if int(f)&(1<<order-1) != 0 || int(f)+(1<<order) > b.frames {
				return fmt.Errorf("mem: buddy snapshot block %d invalid at order %d", f, order)
			}
			if b.state[f] != stateAllocated {
				return fmt.Errorf("mem: buddy snapshot frame %d in two free blocks", f)
			}
			for j := int(f); j < int(f)+(1<<order); j++ {
				if b.state[j] != stateAllocated {
					return fmt.Errorf("mem: buddy snapshot frame %d in two free blocks", j)
				}
				b.state[j] = stateTail
			}
			b.insert(f, order)
			// insert marks the head; the perOrder/nfree bookkeeping below
			// mirrors newBuddy's construction path.
			b.nfree += 1 << order
		}
	}
	return dec.Err()
}

// encode writes every counter field in declaration order.
func (c *Counters) encode(enc *snapcodec.Encoder) {
	for t := range c.Reads {
		enc.I64(c.Reads[t])
		enc.I64(c.Writes[t])
		enc.I64(c.Allocs[t])
		enc.I64(c.Frees[t])
	}
	enc.I64(c.CacheFiltered)
	enc.I64(c.MinorFaults)
	enc.I64(c.HintFaults)
	enc.I64(c.Promotions)
	enc.I64(c.Demotions)
	enc.I64(c.MigrateFails)
	enc.I64(c.SwapOuts)
	enc.I64(c.SwapIns)
	enc.I64(c.OOMKills)
	enc.I64(c.EmergencyAllocs)
	enc.I64(c.HugeSplits)
	enc.I64(c.PagesScanned)
	enc.I64(int64(c.MigrationBusy))
	enc.I64(c.ShadowPromotes)
	enc.I64(c.ShadowHits)
	enc.I64(c.ShadowDrops)
	enc.I64(c.AdmissionRejects)
}

func (c *Counters) decode(dec *snapcodec.Decoder) {
	for t := range c.Reads {
		c.Reads[t] = dec.I64()
		c.Writes[t] = dec.I64()
		c.Allocs[t] = dec.I64()
		c.Frees[t] = dec.I64()
	}
	c.CacheFiltered = dec.I64()
	c.MinorFaults = dec.I64()
	c.HintFaults = dec.I64()
	c.Promotions = dec.I64()
	c.Demotions = dec.I64()
	c.MigrateFails = dec.I64()
	c.SwapOuts = dec.I64()
	c.SwapIns = dec.I64()
	c.OOMKills = dec.I64()
	c.EmergencyAllocs = dec.I64()
	c.HugeSplits = dec.I64()
	c.PagesScanned = dec.I64()
	c.MigrationBusy = sim.Duration(dec.I64())
	c.ShadowPromotes = dec.I64()
	c.ShadowHits = dec.I64()
	c.ShadowDrops = dec.I64()
	c.AdmissionRejects = dec.I64()
}

// EncodePage writes a full page-descriptor record. CacheHint and list links
// are deliberately excluded: the CPU-cache slab and the LRU lists restore
// their own reverse references.
func EncodePage(enc *snapcodec.Encoder, pg *Page) {
	enc.U64(pg.Seq)
	enc.U32(uint32(pg.Node))
	enc.U32(uint32(pg.Frame))
	enc.U32(uint32(pg.Flags))
	enc.U8(pg.Order)
	enc.U64(pg.VA)
	enc.U32(uint32(pg.Space))
	enc.Bool(pg.Accessed)
	enc.Bool(pg.HWDirty)
	enc.I64(int64(pg.BornAt))
	enc.U8(pg.Hist)
	enc.I64(int64(pg.LastHint))
	enc.U32(pg.Freq)
	enc.I64(int64(pg.LastUse))
	enc.I64(int64(pg.PromotedAt))
	enc.U32(uint32(pg.ShadowNode))
	enc.U32(uint32(pg.ShadowFrame))
}

// RestorePage decodes one page record into a fresh descriptor from the
// slab. The caller registers the returned page under its Seq and re-links
// it into whatever structure referenced it.
func (s *System) RestorePage(dec *snapcodec.Decoder) *Page {
	if len(s.descSlab) == 0 {
		s.descSlab = make([]Page, descChunk)
	}
	pg := &s.descSlab[0]
	s.descSlab = s.descSlab[1:]
	pg.Seq = dec.U64()
	pg.Node = NodeID(dec.U32())
	pg.Frame = FrameID(dec.U32())
	pg.Flags = PageFlags(dec.U32())
	pg.Order = dec.U8()
	pg.VA = dec.U64()
	pg.Space = int32(dec.U32())
	pg.Accessed = dec.Bool()
	pg.HWDirty = dec.Bool()
	pg.BornAt = sim.Time(dec.I64())
	pg.Hist = dec.U8()
	pg.LastHint = sim.Time(dec.I64())
	pg.Freq = dec.U32()
	pg.LastUse = sim.Time(dec.I64())
	pg.PromotedAt = sim.Time(dec.I64())
	pg.ShadowNode = NodeID(dec.U32())
	pg.ShadowFrame = FrameID(dec.U32())
	return pg
}
