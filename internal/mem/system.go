package mem

import (
	"fmt"

	"multiclock/internal/fault"
	"multiclock/internal/sim"
)

// Config describes the physical memory layout of a machine.
type Config struct {
	// DRAMNodes and PMNodes give the frame count of each node of the
	// respective tier; e.g. two sockets with DRAM + hot-plugged PM would
	// be DRAMNodes: {N, N}, PMNodes: {M, M}. They describe the classic
	// two-tier hierarchy; Topology supersedes them when set.
	DRAMNodes []int
	PMNodes   []int

	// Topology, when non-nil, gives the full tier hierarchy (any depth,
	// per-tier latencies, optional durable last tier) and wins over
	// DRAMNodes/PMNodes.
	Topology *Topology

	Watermarks WatermarkConfig
	Latency    LatencyModel
}

// DefaultConfig returns a small two-node machine: one DRAM node and one PM
// node with a 1:4 capacity ratio, the shape of the paper's testbed scaled to
// simulation size.
func DefaultConfig() Config {
	return Config{
		DRAMNodes:  []int{1024},
		PMNodes:    []int{4096},
		Watermarks: DefaultWatermarks(),
		Latency:    DefaultLatency(),
	}
}

// topology resolves the hierarchy a Config describes: an explicit Topology
// verbatim, else the legacy DRAM/PM pair with its per-tier latencies lifted
// from cfg.Latency (so a customized two-tier latency model keeps working).
func (cfg Config) topology() Topology {
	if cfg.Topology != nil {
		return *cfg.Topology
	}
	if len(cfg.DRAMNodes) == 0 {
		panic("mem: need at least one DRAM node")
	}
	top := DefaultTopology(cfg.DRAMNodes, cfg.PMNodes)
	for t := range top.Tiers {
		if t < len(cfg.Latency.Read) {
			top.Tiers[t].Read = cfg.Latency.Read[t]
		}
		if t < len(cfg.Latency.Write) {
			top.Tiers[t].Write = cfg.Latency.Write[t]
		}
	}
	return top
}

// System is the whole physical memory of the simulated machine.
type System struct {
	Nodes    []*Node
	Lat      LatencyModel
	Counters Counters

	// Top is the tier hierarchy the system was built from, fastest tier
	// first (tier t is Top.Tiers[t]).
	Top Topology

	// Faults optionally injects deterministic hardware/kernel faults into
	// migration and allocation. Nil (the default) injects nothing and adds
	// no work to any path.
	Faults *fault.Injector

	// tiers caches node IDs per tier in ID order for allocation fallback.
	// A durable last tier has an (always empty) slot, so every Tier of the
	// topology indexes safely.
	tiers [][]NodeID

	// birthOrder caches the frame-backed tiers in fast-to-slow order: the
	// default allocation placement.
	birthOrder []Tier

	// descSlab bump-allocates page descriptors in chunks so page births
	// (and huge-page splits) do not pay one heap allocation per
	// descriptor. Descriptors are never recycled — observers track pages
	// by pointer identity, so a freed page's pointer must stay unique —
	// which means a chunk is garbage only once every descriptor in it is
	// unreachable; at simulation scale that trade is cheap.
	descSlab []Page

	// shadowFrames counts frames currently held by shadow copies
	// (non-exclusive tiering): allocated but neither LRU-resident nor
	// mapped. Machine-level invariant checks reconcile against it.
	shadowFrames int

	// pageSeq is the next descriptor birth sequence number (see Page.Seq).
	pageSeq uint64

	clock *sim.Clock
}

// descChunk is the descriptor slab chunk size in pages.
const descChunk = 1024

// newPage returns a fresh zeroed descriptor from the slab with the unmapped
// sentinel fields set (Space -1, no shadow — NodeID zero is a real node, so
// the no-shadow state needs the explicit sentinel — birth timestamp
// stamped).
func (s *System) newPage() *Page {
	if len(s.descSlab) == 0 {
		s.descSlab = make([]Page, descChunk)
	}
	pg := &s.descSlab[0]
	s.descSlab = s.descSlab[1:]
	pg.Seq = s.pageSeq
	s.pageSeq++
	pg.Space = -1
	pg.ShadowNode = NoNode
	pg.ShadowFrame = NoFrame
	pg.BornAt = s.clock.Now()
	return pg
}

// NewSystem builds the node set from cfg. The clock supplies timestamps for
// page birth and telemetry. Nodes are created tier by tier in topology
// order, so node IDs ascend from the fastest tier down.
func NewSystem(clock *sim.Clock, cfg Config) *System {
	top := cfg.topology()
	if err := top.Validate(); err != nil {
		panic("mem: " + err.Error())
	}
	s := &System{Top: top, clock: clock, tiers: make([][]NodeID, len(top.Tiers))}
	switch {
	case len(cfg.Latency.Read) == len(top.Tiers) &&
		len(cfg.Latency.Write) == len(top.Tiers) &&
		len(cfg.Latency.PageCopy) == len(top.Tiers):
		// A latency model already sized to the hierarchy (the default
		// two-tier model, or a caller-tuned one) is used verbatim.
		s.Lat = cfg.Latency
	case cfg.Topology != nil:
		// An explicit hierarchy derives its per-tier costs from the tier
		// specs; the scalar costs come from the configured model.
		s.Lat = top.Latency(cfg.Latency)
	default:
		// Legacy two-tier configs with partially specified per-tier costs
		// keep the fixed-array semantics: missing entries are zero.
		s.Lat = resizeLatency(cfg.Latency, len(top.Tiers))
	}
	s.Counters = newCounters(top)
	for t, ts := range top.Tiers {
		for socket, frames := range ts.Nodes {
			id := NodeID(len(s.Nodes))
			s.Nodes = append(s.Nodes, newNode(id, Tier(t), frames, cfg.Watermarks, socket))
			s.tiers[t] = append(s.tiers[t], id)
		}
		if !ts.Durable {
			s.birthOrder = append(s.birthOrder, Tier(t))
		}
	}
	return s
}

// Clock returns the virtual clock the system stamps events with.
func (s *System) Clock() *sim.Clock { return s.clock }

// NumTiers returns the number of tiers in the hierarchy, including a
// durable last tier.
func (s *System) NumTiers() int { return len(s.tiers) }

// TierName returns tier t's report label ("DRAM", "CXL", "PM", "SSD").
func (s *System) TierName(t Tier) string { return s.Counters.display(int(t)) }

// FastestTier returns the highest-performing tier (always tier 0).
func (s *System) FastestTier() Tier { return 0 }

// SlowestTier returns the slowest frame-backed tier — the last tier pages
// can actually live on; a durable swap tier below it is not included.
func (s *System) SlowestTier() Tier { return s.birthOrder[len(s.birthOrder)-1] }

// DurableLastTier reports whether the hierarchy ends in a durable
// (storage-backed) tier subsuming the swap path.
func (s *System) DurableLastTier() bool {
	return s.Top.Tiers[len(s.Top.Tiers)-1].Durable
}

// Above returns the tier one step faster than t, if any.
func (s *System) Above(t Tier) (Tier, bool) {
	if t <= 0 {
		return 0, false
	}
	return t - 1, true
}

// Below returns the tier one step slower than t, if any. A durable last
// tier is a valid result: it has no nodes, so PickNodeBelow reports NoNode
// there and the caller falls back to swap-out.
func (s *System) Below(t Tier) (Tier, bool) {
	if int(t)+1 >= len(s.tiers) {
		return t, false
	}
	return t + 1, true
}

// TierNodes returns the node IDs belonging to tier t.
func (s *System) TierNodes(t Tier) []NodeID { return s.tiers[t] }

// TierFree returns total free frames across tier t.
func (s *System) TierFree(t Tier) int {
	total := 0
	for _, id := range s.tiers[t] {
		total += s.Nodes[id].FreeFrames()
	}
	return total
}

// TierCapacity returns total frames across tier t.
func (s *System) TierCapacity(t Tier) int {
	total := 0
	for _, id := range s.tiers[t] {
		total += s.Nodes[id].Frames
	}
	return total
}

// AllocOn allocates a page on a specific node, respecting the emergency
// reserve unless emergency is set (migration targets may not dip below min).
// Returns nil when the node cannot satisfy the request.
func (s *System) AllocOn(id NodeID, emergency bool) *Page {
	return s.AllocBlockOn(id, 0, emergency)
}

// AllocBlockOn allocates a compound page of 2^order frames on a specific
// node (order MaxOrder = one transparent huge page). Returns nil when no
// suitably sized and aligned free block exists — fragmentation can fail a
// huge allocation even with plenty of free frames, exactly as with real
// THP.
func (s *System) AllocBlockOn(id NodeID, order int, emergency bool) *Page {
	n := s.Nodes[id]
	if !emergency {
		if n.FreeFrames() <= n.WM.Min+(1<<order)-1 {
			return nil
		}
		// An injected allocation storm denies ordinary allocations on
		// nodes already near their watermarks, forcing the caller onto
		// the tier-fallback (and ultimately emergency-reserve) path.
		if s.Faults.AllocDenied(n.FreeFrames() < n.WM.Low+(1<<order)) {
			return nil
		}
	}
	dipped := emergency && n.FreeFrames() <= n.WM.Min+(1<<order)-1
	f := n.alloc.Alloc(order)
	if f == NoFrame {
		return nil
	}
	if dipped {
		// The allocation succeeded only because the emergency reserve was
		// opened: account the dip (watermark health telemetry).
		s.Counters.EmergencyAllocs++
	}
	s.Counters.Allocs[n.Tier] += 1 << order
	pg := s.newPage()
	pg.Node = id
	pg.Frame = f
	pg.Order = uint8(order)
	return pg
}

// Alloc allocates a page following the tier fallback order: every node of
// the first tier, then the next tier, and so on — new pages are "born in"
// DRAM while it lasts (§II-A). Returns nil only when the whole machine is
// exhausted.
func (s *System) Alloc(order []Tier) *Page {
	for _, t := range order {
		for _, id := range s.tiers[t] {
			if pg := s.AllocOn(id, false); pg != nil {
				return pg
			}
		}
	}
	// Last resort: dip into reserves anywhere, lowest tier first so the
	// reserve of the scarce tier survives longest.
	for i := len(order) - 1; i >= 0; i-- {
		for _, id := range s.tiers[order[i]] {
			if pg := s.AllocOn(id, true); pg != nil {
				return pg
			}
		}
	}
	return nil
}

// DefaultOrder is the standard two-tier birth placement: DRAM first, then
// PM. Topology-aware callers use System.BirthOrder instead.
func DefaultOrder() []Tier { return []Tier{TierDRAM, TierPM} }

// BirthOrder returns the frame-backed tiers in fast-to-slow order: the
// standard birth placement for any hierarchy. Callers must not mutate the
// returned slice.
func (s *System) BirthOrder() []Tier { return s.birthOrder }

// Free releases the page's frames — and any shadow copy still held, so a
// shadowed page's death cannot leak its second frame. The page must already
// be off all LRU lists and unmapped; the descriptor must not be used
// afterwards.
func (s *System) Free(pg *Page) {
	if pg.OnList() {
		panic("mem: freeing page still on an LRU list")
	}
	if pg.HasShadow() {
		s.DropShadow(pg)
	}
	n := s.Nodes[pg.Node]
	n.alloc.Free(pg.Frame, int(pg.Order))
	s.Counters.Frees[n.Tier] += 1 << pg.Order
	pg.Frame = NoFrame
	pg.Node = NoNode
}

// MigrationResult reports the outcome of a Migrate call.
type MigrationResult struct {
	OK       bool
	From, To NodeID
	// Cost is the daemon-side copy time; Tax is the application-side
	// charge. The caller accounts both to the right timelines.
	Cost sim.Duration
	Tax  sim.Duration
}

// Migrate moves pg to node dst: allocates a destination frame (allowed to
// use reserves — migration is how pressure is relieved), frees the source
// frame, and updates the descriptor in place. The page must be isolated
// from the LRU (FlagIsolated) and not unevictable. Counters record the
// direction as promotion or demotion by tier order.
func (s *System) Migrate(pg *Page, dst NodeID) MigrationResult {
	if pg.Flags.Has(FlagUnevictable) {
		s.Counters.MigrateFails++
		return MigrationResult{}
	}
	if !pg.Flags.Has(FlagIsolated) {
		panic("mem: migrating a page that is not isolated from the LRU")
	}
	if pg.OnList() {
		panic("mem: migrating a page still on a list")
	}
	src := pg.Node
	if src == dst {
		return MigrationResult{OK: true, From: src, To: dst}
	}
	// Injected transient faults: the page is pinned for the duration of
	// this attempt, or the destination node denies the frame allocation
	// despite free memory. Both leave the page intact on its source frame
	// (still isolated, owned by the caller) exactly like a natural
	// destination-full failure.
	if s.Faults.MigrationPinned() || s.Faults.TargetDenied() {
		s.Counters.MigrateFails++
		return MigrationResult{From: src, To: dst}
	}
	dn := s.Nodes[dst]
	f := dn.alloc.Alloc(int(pg.Order))
	if f == NoFrame {
		s.Counters.MigrateFails++
		return MigrationResult{From: src, To: dst}
	}
	// An ordinary migration ends any non-exclusive residency: the shadow
	// protocol only spans promotion → next write or shadow demotion, so a
	// page moving by the regular path gives its retained copy back.
	if pg.HasShadow() {
		s.DropShadow(pg)
	}
	sn := s.Nodes[src]
	sn.alloc.Free(pg.Frame, int(pg.Order))
	s.Counters.Allocs[dn.Tier] += 1 << pg.Order
	s.Counters.Frees[sn.Tier] += 1 << pg.Order
	pg.Node = dst
	pg.Frame = f

	// A compound page copies all its frames; the remap/TLB tax stays per
	// mapping (one PMD entry for a huge page).
	cost := s.Lat.PageCopy[sn.Tier][dn.Tier] * sim.Duration(pg.Frames())
	s.Counters.MigrationBusy += cost
	switch {
	case dn.Tier < sn.Tier:
		s.Counters.Promotions += int64(pg.Frames())
		pg.PromotedAt = s.clock.Now()
	case dn.Tier > sn.Tier:
		s.Counters.Demotions += int64(pg.Frames())
	}
	return MigrationResult{OK: true, From: src, To: dst, Cost: cost, Tax: s.Lat.MigrationTax}
}

// Promote migrates pg one tier up, onto the emptiest node of the tier
// above its current one. Fails (without counting a migrate failure) when
// the page is already on the fastest tier or the tier above has no free
// frame.
func (s *System) Promote(pg *Page) MigrationResult {
	dst := s.PickNodeAbove(s.Tier(pg))
	if dst == NoNode {
		return MigrationResult{From: pg.Node, To: NoNode}
	}
	return s.Migrate(pg, dst)
}

// Demote migrates pg one tier down, onto the emptiest node of the tier
// below its current one. Fails (without counting a migrate failure) when
// no such node has a free frame — in particular when the tier below is a
// durable swap tier; the caller's fallback is SwapOut.
func (s *System) Demote(pg *Page) MigrationResult {
	dst := s.PickNodeBelow(s.Tier(pg))
	if dst == NoNode {
		return MigrationResult{From: pg.Node, To: NoNode}
	}
	return s.Migrate(pg, dst)
}

// Split breaks an isolated compound page into base-page descriptors over
// the same frames (split_huge_page): the block's frames stay allocated but
// are now owned by 512 independent pages that can migrate, swap and age
// individually. The input descriptor must not be reused afterwards.
func (s *System) Split(pg *Page) []*Page {
	if !pg.Flags.Has(FlagIsolated) {
		panic("mem: splitting a page that is not isolated")
	}
	if !pg.IsHuge() {
		panic("mem: splitting a base page")
	}
	out := make([]*Page, pg.Frames())
	for i := range out {
		bp := s.newPage()
		bp.Node = pg.Node
		bp.Frame = pg.Frame + FrameID(i)
		bp.Flags = pg.Flags &^ FlagIsolated
		bp.VA = pg.VA + uint64(i)*PageSize
		bp.Space = pg.Space
		bp.Accessed = pg.Accessed
		bp.HWDirty = pg.HWDirty
		bp.BornAt = pg.BornAt
		out[i] = bp
	}
	s.Counters.HugeSplits++
	// Neutralize the compound descriptor.
	pg.Frame = NoFrame
	pg.Node = NoNode
	pg.Space = -1
	return out
}

// PickNode selects the tier-t node with the most free frames, or NoNode if
// the tier has no free frame at all. Used to choose migration destinations.
func (s *System) PickNode(t Tier) NodeID {
	best, bestFree := NoNode, 0
	for _, id := range s.tiers[t] {
		if f := s.Nodes[id].FreeFrames(); f > bestFree {
			best, bestFree = id, f
		}
	}
	return best
}

// PickNodeAbove selects the emptiest node of the tier above t (the
// promotion destination), or NoNode when t is the fastest tier or the tier
// above is full.
func (s *System) PickNodeAbove(t Tier) NodeID {
	up, ok := s.Above(t)
	if !ok {
		return NoNode
	}
	return s.PickNode(up)
}

// PickNodeBelow selects the emptiest node of the tier below t (the
// demotion destination), or NoNode when t is the slowest frame-backed tier
// (or the tier below is the durable swap tier, which has no nodes).
func (s *System) PickNodeBelow(t Tier) NodeID {
	down, ok := s.Below(t)
	if !ok {
		return NoNode
	}
	return s.PickNode(down)
}

func (s *System) String() string {
	out := ""
	for _, n := range s.Nodes {
		out += fmt.Sprintf("%v\n", n)
	}
	return out
}
