package mem

import "fmt"

// CheckInvariants verifies the memory system's conservation laws: every
// node's free-frame count stays within [0, Frames] and agrees with the
// buddy allocator's per-order free-block inventory, and the alloc/free
// counters conserve (allocations minus frees equals frames in use). Chaos
// and fuzz tests call it after injected faults; machine.CheckInvariants
// layers LRU and page-table consistency on top.
func (s *System) CheckInvariants() error {
	used := 0
	for _, n := range s.Nodes {
		free := n.FreeFrames()
		if free < 0 || free > n.Frames {
			return fmt.Errorf("mem: node %d free frames out of range: %d/%d", n.ID, free, n.Frames)
		}
		blocks := n.FreeBlocks()
		sum := 0
		for order, count := range blocks {
			sum += count << order
		}
		if sum != free {
			return fmt.Errorf("mem: node %d buddy inventory %d frames != free count %d", n.ID, sum, free)
		}
		used += n.UsedFrames()
	}
	var allocs, frees int64
	for t := range s.Counters.Allocs {
		allocs += s.Counters.Allocs[t]
		frees += s.Counters.Frees[t]
	}
	if allocs-frees != int64(used) {
		return fmt.Errorf("mem: alloc/free accounting: %d - %d != %d frames used", allocs, frees, used)
	}
	return nil
}
