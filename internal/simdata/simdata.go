// Package simdata provides typed arrays whose backing storage lives in
// simulated memory: every element read/write issues the page access a real
// program would, while the values themselves are held in ordinary Go slices
// (execution-driven simulation). Workloads like the GAPBS kernels build
// their data structures from these arrays.
package simdata

import (
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
)

// Array is a fixed-length vector of T in simulated memory.
type Array[T any] struct {
	m        *machine.Machine
	as       *pagetable.AddressSpace
	base     pagetable.VPN
	perPage  int
	data     []T
	elemSize int
}

// NewArray allocates an n-element array of elemSize-byte elements in the
// address space, reserving the exact number of pages (demand faulted).
func NewArray[T any](m *machine.Machine, as *pagetable.AddressSpace, name string, n, elemSize int) *Array[T] {
	return newArray[T](m, as, name, n, elemSize, false)
}

// NewArrayHuge is NewArray with transparent-huge-page backing (the
// madvise(MADV_HUGEPAGE) a tuned graph framework would issue for its CSR).
func NewArrayHuge[T any](m *machine.Machine, as *pagetable.AddressSpace, name string, n, elemSize int) *Array[T] {
	return newArray[T](m, as, name, n, elemSize, true)
}

func newArray[T any](m *machine.Machine, as *pagetable.AddressSpace, name string, n, elemSize int, huge bool) *Array[T] {
	if n <= 0 {
		panic("simdata: empty array")
	}
	if elemSize <= 0 || elemSize > mem.PageSize {
		panic("simdata: element size must be in (0, PageSize]")
	}
	perPage := mem.PageSize / elemSize
	npages := (n + perPage - 1) / perPage
	var vma *pagetable.VMA
	if huge {
		vma = as.MmapHuge(npages, name)
	} else {
		vma = as.Mmap(npages, false, name)
	}
	return &Array[T]{
		m:        m,
		as:       as,
		base:     vma.Start,
		perPage:  perPage,
		data:     make([]T, n),
		elemSize: elemSize,
	}
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.data) }

// Pages returns the page footprint.
func (a *Array[T]) Pages() int { return (len(a.data) + a.perPage - 1) / a.perPage }

// vpnOf returns the page holding element i.
func (a *Array[T]) vpnOf(i int) pagetable.VPN {
	return a.base + pagetable.VPN(i/a.perPage)
}

// Get reads element i, charging the simulated access.
func (a *Array[T]) Get(i int) T {
	a.m.Access(a.as, a.vpnOf(i), false)
	return a.data[i]
}

// Set writes element i, charging the simulated access.
func (a *Array[T]) Set(i int, v T) {
	a.m.Access(a.as, a.vpnOf(i), true)
	a.data[i] = v
}

// Peek reads element i without a simulated access; for bookkeeping that a
// real program would keep in registers/cache (e.g. loop bounds just read).
func (a *Array[T]) Peek(i int) T { return a.data[i] }

// Poke writes element i without a simulated access (initialization outside
// the measured region).
func (a *Array[T]) Poke(i int, v T) { a.data[i] = v }

// Fill sets every element with simulated writes (sequential touch).
func (a *Array[T]) Fill(v T) {
	for i := range a.data {
		a.Set(i, v)
	}
}
