package simdata

import (
	"testing"

	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/sim"
)

type nullPolicy struct{ machine.Base }

func (nullPolicy) Name() string { return "null" }

func newM() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{512}
	cfg.Mem.PMNodes = []int{2048}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	return machine.New(cfg, &nullPolicy{})
}

func TestArrayGetSet(t *testing.T) {
	m := newM()
	as := m.NewSpace()
	a := NewArray[int64](m, as, "a", 100, 8)
	if a.Len() != 100 {
		t.Fatal("Len")
	}
	a.Set(5, 42)
	if a.Get(5) != 42 {
		t.Fatal("round trip")
	}
	if a.Get(6) != 0 {
		t.Fatal("zero value")
	}
}

func TestArrayPageFootprint(t *testing.T) {
	m := newM()
	as := m.NewSpace()
	// 1000 × 8 bytes = 8000 bytes = 2 pages.
	a := NewArray[int64](m, as, "a", 1000, 8)
	if a.Pages() != 2 {
		t.Fatalf("Pages = %d, want 2", a.Pages())
	}
	// Elements 0..511 on page 1, 512.. on page 2.
	a.Set(0, 1)
	a.Set(511, 1)
	a.Set(512, 1)
	if as.Mapped() != 2 {
		t.Fatalf("mapped = %d, want 2", as.Mapped())
	}
}

func TestArrayChargesAccesses(t *testing.T) {
	m := newM()
	as := m.NewSpace()
	a := NewArray[int32](m, as, "a", 10, 4)
	before := m.Mem.Counters.TotalAccesses()
	a.Set(0, 7)
	a.Get(0)
	if got := m.Mem.Counters.TotalAccesses() - before; got != 2 {
		t.Fatalf("accesses = %d, want 2", got)
	}
	if m.Mem.Counters.Writes[mem.TierDRAM] != 1 {
		t.Fatal("Set must be a write")
	}
}

func TestPeekPokeAreFree(t *testing.T) {
	m := newM()
	as := m.NewSpace()
	a := NewArray[int32](m, as, "a", 10, 4)
	before := m.Mem.Counters.TotalAccesses()
	now := m.Clock.Now()
	a.Poke(3, 9)
	if a.Peek(3) != 9 {
		t.Fatal("peek/poke")
	}
	if m.Mem.Counters.TotalAccesses() != before || m.Clock.Now() != now {
		t.Fatal("peek/poke charged the simulation")
	}
}

func TestFill(t *testing.T) {
	m := newM()
	as := m.NewSpace()
	a := NewArray[int32](m, as, "a", 100, 4)
	a.Fill(3)
	for i := 0; i < 100; i++ {
		if a.Peek(i) != 3 {
			t.Fatal("fill")
		}
	}
}

func TestArrayValidation(t *testing.T) {
	m := newM()
	as := m.NewSpace()
	for _, f := range []func(){
		func() { NewArray[int32](m, as, "x", 0, 4) },
		func() { NewArray[int32](m, as, "x", 10, 0) },
		func() { NewArray[int32](m, as, "x", 10, 8192) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
	_ = sim.Duration(0)
}

func TestHugeArray(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{2048}
	cfg.Mem.PMNodes = []int{2048}
	cfg.OpCost = 0
	cfg.CPUCachePages = 0
	m := machine.New(cfg, &nullPolicy{})
	as := m.NewSpace()
	a := NewArrayHuge[int64](m, as, "huge", 1000, 8)
	a.Set(0, 42)
	a.Set(999, 7)
	if a.Get(0) != 42 || a.Get(999) != 7 {
		t.Fatal("round trip")
	}
	// The whole array (2 pages) faulted as one compound region.
	if m.Mem.Counters.MinorFaults != 1 {
		t.Fatalf("minor faults = %d, want 1 huge fault", m.Mem.Counters.MinorFaults)
	}
	if m.Mem.Nodes[0].UsedFrames() != 512 {
		t.Fatalf("frames used = %d, want one 512-frame block", m.Mem.Nodes[0].UsedFrames())
	}
}
