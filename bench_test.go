package multiclock

// One benchmark per table and figure of the paper, each regenerating the
// corresponding result through the evaluation harness, plus
// microbenchmarks of the simulator's hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute in quick mode (compressed ops and intervals;
// see internal/bench's time-scaling note) so the whole suite completes in
// minutes; use cmd/mcbench for full-scale runs.

import (
	"strings"
	"testing"

	"multiclock/internal/bench"
	"multiclock/internal/kvstore"
	"multiclock/internal/lru"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/pagetable"
	"multiclock/internal/policy"
	"multiclock/internal/sim"
	"multiclock/internal/ycsb"
)

// newBenchStore builds a store with the evaluation's item cost model.
func newBenchStore(m *machine.Machine, items int) *kvstore.Store {
	cfg := kvstore.DefaultConfig(items)
	cfg.ItemTouches = 8
	return kvstore.New(m, cfg)
}

// benchExperiment runs one experiment per iteration and sanity-checks the
// output.
func benchExperiment(b *testing.B, name string, mustContain string) {
	b.Helper()
	opt := bench.Options{Quick: true, Seed: 1}
	for i := 0; i < b.N; i++ {
		out, err := bench.Run(name, opt)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, mustContain) {
			b.Fatalf("experiment %s output missing %q:\n%s", name, mustContain, out)
		}
		if i == 0 {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkFig1Heatmaps(b *testing.B)  { benchExperiment(b, "fig1", "heatmap") }
func BenchmarkFig2Frequency(b *testing.B) { benchExperiment(b, "fig2", "multi-access") }
func BenchmarkTable1(b *testing.B)        { benchExperiment(b, "table1", "multiclock") }
func BenchmarkFig5YCSB(b *testing.B)      { benchExperiment(b, "fig5", "workload") }
func BenchmarkFig6GAPBS(b *testing.B)     { benchExperiment(b, "fig6", "SSSP") }
func BenchmarkFig7MemoryMode(b *testing.B) {
	benchExperiment(b, "fig7", "memory-mode")
}
func BenchmarkFig8Promotions(b *testing.B) { benchExperiment(b, "fig8", "promoted") }
func BenchmarkFig9Reaccess(b *testing.B)   { benchExperiment(b, "fig9", "re-accessed") }
func BenchmarkFig10ScanInterval(b *testing.B) {
	benchExperiment(b, "fig10", "interval")
}
func BenchmarkAblationPromoteList(b *testing.B) {
	benchExperiment(b, "ablation-promote", "recency+frequency")
}
func BenchmarkAblationScanBatch(b *testing.B) {
	benchExperiment(b, "ablation-batch", "1024")
}
func BenchmarkAblationRatio(b *testing.B) {
	benchExperiment(b, "ablation-ratio", "1:4")
}
func BenchmarkAblationWriteAware(b *testing.B) {
	benchExperiment(b, "ablation-write", "write-biased")
}
func BenchmarkAblationAMP(b *testing.B) {
	benchExperiment(b, "ablation-amp", "amp-lfu")
}
func BenchmarkAblationGranularity(b *testing.B) {
	benchExperiment(b, "ablation-granularity", "thermostat")
}
func BenchmarkAblationMultiProc(b *testing.B) {
	benchExperiment(b, "ablation-multiproc", "late/early")
}
func BenchmarkAblationTHP(b *testing.B) {
	benchExperiment(b, "ablation-thp", "2 MiB")
}

// --- simulator hot-path microbenchmarks ---

func microMachine(p machine.Policy) *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.Mem.DRAMNodes = []int{4096}
	cfg.Mem.PMNodes = []int{16384}
	cfg.OpCost = 0
	return machine.New(cfg, p)
}

type noPolicy struct{ machine.Base }

func (noPolicy) Name() string { return "null" }

// BenchmarkAccessHotPath measures the cost of one simulated memory access
// to a resident page (the simulator's innermost loop).
func BenchmarkAccessHotPath(b *testing.B) {
	m := microMachine(&noPolicy{})
	as := m.NewSpace()
	v := as.Mmap(1024, false, "x")
	for i := 0; i < 1024; i++ {
		m.Access(as, v.Start+pagetable.VPN(i), false)
	}
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(as, v.Start+pagetable.VPN(rng.Intn(1024)), false)
	}
}

// BenchmarkPageFault measures demand-paging cost (allocation, PTE install,
// LRU insert).
func BenchmarkPageFault(b *testing.B) {
	m := microMachine(&noPolicy{})
	as := m.NewSpace()
	v := as.Mmap(1<<20, false, "huge")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vpn := v.Start + pagetable.VPN(i%4000)
		m.Access(as, vpn, false)
		m.Unmap(as, vpn)
	}
}

// BenchmarkScanCycle measures one CLOCK pass over a populated vec.
func BenchmarkScanCycle(b *testing.B) {
	vec := lru.NewVec(0)
	pages := make([]*mem.Page, 8192)
	for i := range pages {
		pages[i] = &mem.Page{}
		vec.Add(pages[i])
	}
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Touch a fraction like real scans see.
		for j := 0; j < 256; j++ {
			pages[rng.Intn(len(pages))].Accessed = true
		}
		vec.ScanCycle(1024)
	}
}

// BenchmarkMigration measures a promote+demote round trip.
func BenchmarkMigration(b *testing.B) {
	m := microMachine(&noPolicy{})
	as := m.NewSpace()
	v := as.Mmap(1, false, "x")
	pg := m.Access(as, v.Start, false)
	pm := m.Mem.TierNodes(mem.TierPM)[0]
	dram := m.Mem.TierNodes(mem.TierDRAM)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.MigratePage(pg, pm) || !m.MigratePage(pg, dram) {
			b.Fatal("migration failed")
		}
	}
}

// BenchmarkYCSBOp measures one full key-value operation through the store,
// client and simulator.
func BenchmarkYCSBOp(b *testing.B) {
	m := microMachine(policy.NewStatic())
	store := newBenchStore(m, 10000)
	client := ycsb.NewClient(m, store, ycsb.DefaultClientConfig(10000))
	client.Load()
	b.ResetTimer()
	// Run in chunks so client-side batching is realistic.
	const chunk = 1024
	for n := 0; n < b.N; n += chunk {
		client.Run(ycsb.WorkloadA, chunk)
	}
}

// BenchmarkZipfian measures the key-chooser alone.
func BenchmarkZipfian(b *testing.B) {
	z := ycsb.NewScrambled(1 << 20)
	rng := sim.NewRNG(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next(rng)
	}
}

// BenchmarkKpromotedWakeup measures one daemon wakeup (scan + promote) on a
// steady-state multiclock machine.
func BenchmarkKpromotedWakeup(b *testing.B) {
	sys := NewSystem(Config{
		DRAMPages:    1024,
		PMPages:      8192,
		ScanInterval: 10 * Millisecond,
	})
	defer sys.Stop()
	store := sys.NewKVStore(12000)
	client := sys.NewYCSB(store, 12000)
	client.Load()
	client.Run(WorkloadA, 50000)
	m := sys.Machine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Advancing exactly one interval fires each node's daemon once.
		m.Compute(10 * Millisecond)
	}
}
