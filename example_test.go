package multiclock_test

import (
	"fmt"

	"multiclock"
)

// ExampleNewSystem builds a hybrid-memory system running MULTI-CLOCK and
// runs a YCSB workload whose footprint exceeds DRAM.
func ExampleNewSystem() {
	sys := multiclock.NewSystem(multiclock.Config{
		Policy:       multiclock.PolicyMultiClock,
		DRAMPages:    512,
		PMPages:      4096,
		ScanInterval: 10 * multiclock.Millisecond,
		Seed:         1,
	})
	defer sys.Stop()

	store := sys.NewKVStore(8000)
	client := sys.NewYCSB(store, 8000)
	client.Load()
	res := client.Run(multiclock.WorkloadA, 50000)

	fmt.Println(res.Ops, "operations completed")
	fmt.Println(res.Throughput > 0, sys.DRAMHitRatio() > 0)
	// Output:
	// 50000 operations completed
	// true true
}

// ExampleSystem_NewGraph runs a GAPBS kernel over a synthetic graph held
// in simulated memory.
func ExampleSystem_NewGraph() {
	sys := multiclock.NewSystem(multiclock.Config{
		Policy:    multiclock.PolicyStatic,
		DRAMPages: 1024,
		PMPages:   4096,
		Seed:      1,
	})
	defer sys.Stop()

	g := sys.NewGraph(multiclock.GraphConfig{
		Vertices:  1000,
		Degree:    4,
		Kronecker: true,
		Seed:      1,
	})
	parent := g.BFS(0)
	reached := 0
	for _, p := range parent {
		if p >= 0 {
			reached++
		}
	}
	fmt.Println(len(parent) == 1000, reached > 0)
	// Output:
	// true true
}

// ExampleRunExperiment regenerates one of the paper's tables.
func ExampleRunExperiment() {
	out, err := multiclock.RunExperiment("table1", true)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(out) > 0)
	// Output:
	// true
}

// ExampleSystem_Attach shows the multi-observer telemetry: a promotion
// tracker (the Fig. 8/9 instrument) and a metrics collector ride the same
// run, and observers detach independently.
func ExampleSystem_Attach() {
	sys := multiclock.NewSystem(multiclock.Config{
		DRAMPages:    256,
		PMPages:      2048,
		ScanInterval: 5 * multiclock.Millisecond,
		Seed:         1,
	})
	defer sys.Stop()

	col := sys.EnableMetrics(64) // observer #1: metrics + event trace
	tracker := sys.NewPromotionTracker(100 * multiclock.Millisecond)
	detach := sys.Attach(tracker) // observer #2: promotion telemetry
	defer detach()

	store := sys.NewKVStore(6000)
	client := sys.NewYCSB(store, 6000)
	client.Load()
	client.Run(multiclock.WorkloadA, 80000)

	fmt.Println(tracker.TotalPromotions() > 0)
	fmt.Println(tracker.MeanReaccessPercent() > 0)
	fmt.Println(col.Registry().Counter("promotions").Value() == sys.Counters().Promotions)
	// Output:
	// true
	// true
	// true
}
