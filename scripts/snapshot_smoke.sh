#!/bin/sh
# Snapshot smoke: prove that a soak killed mid-run and restored from its
# last checkpoint finishes byte-identical to the run that never stopped,
# and that the resumed audit trail bisects clean against the straight one.
#
# Used by the CI smoke step (default scale) and the nightly long-soak
# variant. Knobs via environment:
#   POLICY  policy to soak                      (default multiclock)
#   OPS     ops per workload, empty = -quick default
#   EVERY   checkpoint cadence in ops           (default 2000)
#   CHAOS   fault spec "seed,rate", empty = off
#   RACE    non-empty = build the binaries with -race
set -eu

POLICY="${POLICY:-multiclock}"
EVERY="${EVERY:-2000}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

BUILD=""
[ -n "${RACE:-}" ] && BUILD="-race"
go build $BUILD -o "$DIR/mcbench" ./cmd/mcbench
go build -o "$DIR/mcmetrics" ./cmd/mcmetrics

ARGS="-soak $POLICY -quick -seed 1"
[ -n "${OPS:-}" ] && ARGS="$ARGS -soak-ops $OPS"
[ -n "${CHAOS:-}" ] && ARGS="$ARGS -chaos $CHAOS"

# 1. The straight run, recording its own audit trail.
"$DIR/mcbench" $ARGS -audit "$DIR/straight.jsonl" -snapshot-every "$EVERY" \
    > "$DIR/straight.txt"

# 2. The checkpointed run, killed once checkpoints start landing.
"$DIR/mcbench" $ARGS -snapshot "$DIR/run.mcsnap" -audit "$DIR/resumed.jsonl" \
    -snapshot-every "$EVERY" > "$DIR/partial.txt" &
PID=$!
while [ ! -s "$DIR/run.mcsnap" ]; do
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "run finished before the kill; lower EVERY or raise OPS" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

# 3. Restore from the last checkpoint and run to completion: the final
#    report must match the straight run byte for byte.
"$DIR/mcbench" $ARGS -restore "$DIR/run.mcsnap" -snapshot "$DIR/run.mcsnap" \
    -audit "$DIR/resumed.jsonl" -snapshot-every "$EVERY" > "$DIR/resumed.txt"
cmp "$DIR/straight.txt" "$DIR/resumed.txt"

# 4. The reconciled-and-continued audit trail must be identical too.
"$DIR/mcmetrics" diverge "$DIR/straight.jsonl" "$DIR/resumed.jsonl"
cmp "$DIR/straight.jsonl" "$DIR/resumed.jsonl"

echo "snapshot smoke OK: killed+restored $POLICY soak is byte-identical to the straight run"
