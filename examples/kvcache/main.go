// KV-cache study: YCSB workload D — new records are inserted and the most
// recent records are read repeatedly. Inserts land in PM once DRAM is full,
// then immediately become the hottest data: the ideal case for dynamic
// tiering and the paper's largest win (+132% vs static, §V-C.1). This
// example also shows the promotion/re-access telemetry behind Figs. 8–9.
package main

import (
	"fmt"

	"multiclock"
)

func run(policy multiclock.Policy) {
	sys := multiclock.NewSystem(multiclock.Config{
		Policy:       policy,
		DRAMPages:    1024,
		PMPages:      8192,
		ScanInterval: 10 * multiclock.Millisecond,
		Seed:         11,
	})
	defer sys.Stop()
	tracker := sys.NewPromotionTracker(200 * multiclock.Millisecond)
	sys.Attach(tracker)

	store := sys.NewKVStore(20000)
	client := sys.NewYCSB(store, 16000)
	client.Load()

	res := client.Run(multiclock.WorkloadD, 400_000)

	fmt.Printf("%-12s  %9.0f ops/s  records %d→%d  promotions %d  re-access %.1f%%\n",
		policy, res.Throughput, 16000, client.Records(),
		tracker.TotalPromotions(), tracker.MeanReaccessPercent())
}

func main() {
	fmt.Println("YCSB workload D: 95% reads of recent records, 5% inserts")
	fmt.Println()
	for _, p := range []multiclock.Policy{
		multiclock.PolicyStatic,
		multiclock.PolicyNimble,
		multiclock.PolicyMultiClock,
	} {
		run(p)
	}
	fmt.Println("\nMULTI-CLOCK promotes fewer pages than recency-only selection but a")
	fmt.Println("larger fraction of them are re-accessed from DRAM (paper §V-D)")
}
