// Tracing: reproduce the paper's Fig. 1 motivation measurement on a
// synthetic bimodal workload — sample pages, record per-window access
// counts, and render the heatmap that reveals DRAM-friendly, tier-friendly
// (bimodal) and cold pages.
package main

import (
	"fmt"

	"multiclock/internal/machine"
	"multiclock/internal/pagetable"
	"multiclock/internal/policy"
	"multiclock/internal/sim"
	"multiclock/internal/trace"
)

func main() {
	cfg := machine.DefaultConfig()
	cfg.Seed = 5
	m := machine.New(cfg, policy.NewStatic())
	as := m.NewSpace()

	pattern := trace.PatternRUBiS
	duration := 2 * sim.Second
	pattern.Phase = duration / 5 // several hot/cold phase flips per run

	// The pattern VMA is the first mapping in the space: plan sample rows
	// up front. Sample 40 pages spread across the population so all three
	// classes appear.
	base := pagetable.VPN(1)
	var samples []pagetable.VPN
	for i := 0; i < 40; i++ {
		samples = append(samples, base+pagetable.VPN(i*pattern.Pages/40))
	}
	h := trace.NewHeatmap(samples, []int32{as.ID}, duration/48)
	m.Attach(h)

	trace.RunPattern(m, as, pattern, duration, 5)

	fmt.Println("RUBiS-like access pattern: 40 sampled pages over virtual time")
	fmt.Println("rows 0-5 ≈ DRAM-friendly, 6-19 ≈ tier-friendly (bimodal), rest cold")
	fmt.Println()
	fmt.Print(h.Render())

	// The same run feeds the Fig. 2 question: do pages accessed multiple
	// times in a window stay hot in the next one?
	m2 := machine.New(cfg, policy.NewStatic())
	as2 := m2.NewSpace()
	wf := trace.NewWindowFreq(duration/12, duration/12)
	m2.Attach(wf)
	trace.RunPattern(m2, as2, pattern, duration, 5)
	res := wf.Result()
	fmt.Printf("\nwindow analysis: single-access pages avg %.2f accesses next window;\n", res.SingleMean)
	fmt.Printf("multi-access pages avg %.2f — %.1f× more (MULTI-CLOCK's hypothesis)\n",
		res.MultiMean, res.MultiMean/res.SingleMean)
}
