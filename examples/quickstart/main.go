// Quickstart: build a hybrid DRAM+PM system, run a YCSB workload whose
// footprint exceeds DRAM, and compare MULTI-CLOCK's dynamic tiering against
// static tiering — the paper's headline comparison in ~40 lines.
package main

import (
	"fmt"

	"multiclock"
)

func run(policy multiclock.Policy) float64 {
	sys := multiclock.NewSystem(multiclock.Config{
		Policy:       policy,
		DRAMPages:    1024, // 4 MiB of simulated DRAM
		PMPages:      8192, // 32 MiB of simulated persistent memory
		ScanInterval: 10 * multiclock.Millisecond,
		Seed:         42,
	})
	defer sys.Stop()

	store := sys.NewKVStore(16000) // ≈16 MiB of records: 4× DRAM
	client := sys.NewYCSB(store, 16000)
	client.Load()

	// Warm up one pass, then measure: the paper's runs are long enough
	// that warmup is negligible; ours are compressed.
	client.Run(multiclock.WorkloadA, 100_000)
	res := client.Run(multiclock.WorkloadA, 200_000)

	fmt.Printf("%-12s  %9.0f ops/s  DRAM hit %5.1f%%  promotions %d\n",
		policy, res.Throughput, 100*sys.DRAMHitRatio(), sys.Counters().Promotions)
	return res.Throughput
}

func main() {
	fmt.Println("YCSB workload A (50% reads / 50% updates), footprint 4× DRAM")
	static := run(multiclock.PolicyStatic)
	mc := run(multiclock.PolicyMultiClock)
	fmt.Printf("\nMULTI-CLOCK vs static tiering: %+.1f%%\n", 100*(mc/static-1))
}
