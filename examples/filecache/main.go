// File cache: MULTI-CLOCK manages file-backed pages too (§VI: "anonymous
// and file-backed pages, making MULTI-CLOCK a complete solution", unlike
// NUMA-balancing-based tiering). A large cold file fills DRAM; a small
// index file everyone keeps reading lands in PM — dynamic tiering promotes
// the index back to DRAM.
package main

import (
	"fmt"

	"multiclock"
)

func run(policy multiclock.Policy) {
	sys := multiclock.NewSystem(multiclock.Config{
		Policy:       policy,
		DRAMPages:    512,
		PMPages:      4096,
		ScanInterval: 10 * multiclock.Millisecond,
		Seed:         3,
	})
	defer sys.Stop()
	fc := sys.NewFileCache()

	// Ingest: the table scan claims DRAM, then the index is built.
	data := fc.Open("table.data", 700)
	data.ReadRange(0, 700)
	index := fc.Open("table.idx", 64)
	index.ReadRange(0, 64)

	// Nightly batch: repeated table scans across several scan intervals.
	// The idle index is demoted to PM (under static it may simply never
	// have been in DRAM).
	for round := 0; round < 5; round++ {
		data.ReadRange(0, 700)
		sys.Machine().Compute(11 * multiclock.Millisecond)
	}

	// Query phase: scans stop; every request hits the index — a bimodal,
	// tier-friendly file (§II-A). MULTI-CLOCK promotes it out of PM;
	// static tiering leaves it there forever. Requests arrive over real
	// time, so kpromoted gets its wakeups.
	start := sys.Elapsed()
	for round := 0; round < 60; round++ {
		index.ReadRange(0, 64)
		data.Read(round * 11)
		sys.Machine().Compute(1 * multiclock.Millisecond) // request gap
	}
	elapsed := sys.Elapsed() - start - 60*multiclock.Millisecond

	fmt.Printf("%-12s  query loop: %-10v  demotions: %-5d  DRAM hit %.1f%%\n",
		policy, elapsed, sys.Counters().Demotions, 100*sys.DRAMHitRatio())
}

func main() {
	fmt.Println("hot index file (64 pages) vs cold 700-page data file, 512-page DRAM")
	fmt.Println()
	run(multiclock.PolicyStatic)
	run(multiclock.PolicyMultiClock)
	fmt.Println("\nMULTI-CLOCK's demotion keeps DRAM headroom so the hot index file lives in")
	fmt.Println("DRAM; file pages ride the file LRU lists (cross-tier promotion of file")
	fmt.Println("pages is exercised by the internal/pagecache tests)")
}
