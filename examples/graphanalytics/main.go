// Graph analytics: run GAPBS PageRank over a Kronecker graph whose CSR
// exceeds DRAM under every tiering policy, reporting execution time — the
// shape of the paper's Fig. 6/7b.
package main

import (
	"fmt"

	"multiclock"
)

func main() {
	graphCfg := multiclock.GraphConfig{
		Vertices:  48000,
		Degree:    6,
		Kronecker: true,
		Seed:      7,
	}

	fmt.Println("PageRank (3 iterations) on a Kronecker graph, CSR ≈ 2× DRAM")
	var static multiclock.Duration
	for _, policy := range multiclock.Policies() {
		sys := multiclock.NewSystem(multiclock.Config{
			Policy:       policy,
			DRAMPages:    512,
			PMPages:      8192,
			ScanInterval: 10 * multiclock.Millisecond,
			Seed:         7,
		})
		g := sys.NewGraph(graphCfg)
		start := sys.Elapsed()
		g.PageRank(3)
		elapsed := sys.Elapsed() - start
		if policy == multiclock.PolicyStatic {
			static = elapsed
		}
		norm := float64(elapsed) / float64(static)
		fmt.Printf("%-12s  %v  (%.3f× static)\n", policy, elapsed, norm)
		sys.Stop()
	}
	fmt.Println("\nlower is better; dynamic tiering promotes the hot per-vertex arrays to DRAM")
}
