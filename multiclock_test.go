package multiclock

import (
	"strings"
	"testing"

	"multiclock/internal/core"
)

func TestNewSystemDefaults(t *testing.T) {
	sys := NewSystem(Config{})
	defer sys.Stop()
	if sys.PolicyName() != "multiclock" {
		t.Fatalf("default policy = %q", sys.PolicyName())
	}
	if sys.Elapsed() != 0 {
		t.Fatal("fresh system has elapsed time")
	}
	if sys.Machine() == nil || sys.Counters() == nil {
		t.Fatal("accessors")
	}
}

func TestEveryPolicyConstructs(t *testing.T) {
	for _, p := range Policies() {
		sys := NewSystem(Config{Policy: p, DRAMPages: 256, PMPages: 1024})
		if sys.PolicyName() != string(p) {
			t.Fatalf("policy %q built %q", p, sys.PolicyName())
		}
		sys.Stop()
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSystem(Config{Policy: "bogus"})
}

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem(Config{
		Policy:       PolicyMultiClock,
		DRAMPages:    1024,
		PMPages:      8192,
		ScanInterval: 10 * Millisecond,
		Seed:         7,
	})
	defer sys.Stop()
	store := sys.NewKVStore(4000)
	client := sys.NewYCSB(store, 4000)
	client.Load()
	res := client.Run(WorkloadA, 20000)
	if res.Ops != 20000 || res.Throughput <= 0 {
		t.Fatalf("run result: %+v", res)
	}
	if sys.DRAMHitRatio() <= 0 {
		t.Fatal("no DRAM hits recorded")
	}
}

func TestMultiClockOutperformsStaticViaFacade(t *testing.T) {
	run := func(p Policy) float64 {
		sys := NewSystem(Config{
			Policy:       p,
			DRAMPages:    512,
			PMPages:      8192,
			ScanInterval: 5 * Millisecond,
			Seed:         3,
		})
		defer sys.Stop()
		store := sys.NewKVStore(8000)
		client := sys.NewYCSB(store, 8000)
		client.Load()
		// Warm, then measure.
		client.Run(WorkloadA, 60000)
		return client.Run(WorkloadA, 60000).Throughput
	}
	static := run(PolicyStatic)
	mc := run(PolicyMultiClock)
	if mc <= static {
		t.Fatalf("multiclock %.0f ≤ static %.0f — headline result missing", mc, static)
	}
}

func TestGraphViaFacade(t *testing.T) {
	sys := NewSystem(Config{Policy: PolicyStatic, DRAMPages: 1024, PMPages: 4096})
	defer sys.Stop()
	g := sys.NewGraph(GraphConfig{Vertices: 2000, Degree: 4, Kronecker: true, Seed: 1})
	if g.N != 2000 {
		t.Fatal("graph size")
	}
	parent := g.BFS(0)
	if len(parent) != 2000 {
		t.Fatal("bfs result")
	}
	if sys.Elapsed() <= 0 {
		t.Fatal("graph work cost no time")
	}
}

func TestPromotionTracker(t *testing.T) {
	sys := NewSystem(Config{DRAMPages: 256, PMPages: 1024, ScanInterval: 5 * Millisecond})
	defer sys.Stop()
	tr := sys.NewPromotionTracker(100 * Millisecond)
	sys.Attach(tr)
	store := sys.NewKVStore(3000)
	client := sys.NewYCSB(store, 3000)
	client.Load()
	client.Run(WorkloadA, 50000)
	if tr.TotalPromotions() == 0 {
		t.Fatal("tracker saw no promotions on an oversubscribed multiclock system")
	}
}

func TestWorkloadReexports(t *testing.T) {
	if WorkloadA.Name != "A" || WorkloadW.UpdateProp != 1 {
		t.Fatal("workload re-exports")
	}
	names := ""
	for _, w := range PaperSequence {
		names += w.Name
	}
	if names != "ABCFWD" {
		t.Fatal("sequence re-export")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	names := Experiments()
	want := []string{"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1"}
	have := strings.Join(names, ",")
	for _, w := range want {
		if !strings.Contains(have, w) {
			t.Fatalf("experiment %q missing from %v", w, names)
		}
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	out, err := RunExperiment("table1", true)
	if err != nil || !strings.Contains(out, "multiclock") {
		t.Fatalf("table1: %v\n%s", err, out)
	}
}

func TestCustomMultiClockConfig(t *testing.T) {
	mcCfg := &core.Config{
		ScanInterval: 5 * Millisecond,
		ScanBatch:    256,
		WriteBias:    true,
	}
	sys := NewSystem(Config{Policy: PolicyMultiClock, MultiClock: mcCfg, DRAMPages: 128, PMPages: 512})
	defer sys.Stop()
	if sys.PolicyName() != "multiclock" {
		t.Fatal("custom config lost the policy")
	}
	// The daemons must run at the custom cadence.
	before := sys.Counters().PagesScanned
	store := sys.NewKVStore(500)
	client := sys.NewYCSB(store, 500)
	client.Load()
	sys.Machine().Compute(26 * Millisecond) // ≥5 wakeups at 5ms
	if sys.Counters().PagesScanned == before {
		t.Fatal("custom-config daemons never scanned")
	}
}

func TestExtensionPolicies(t *testing.T) {
	for _, p := range ExtensionPolicies() {
		sys := NewSystem(Config{Policy: p, DRAMPages: 128, PMPages: 512})
		name := sys.PolicyName()
		if base, gated := strings.CutSuffix(string(p), "-gated"); gated {
			// Gated variants report their admission controller, e.g.
			// "multiclock+bandwidth-gate(5%/1.000s)".
			if !strings.HasPrefix(name, base+"+") {
				t.Fatalf("gated extension %q built %q, want %q prefix", p, name, base+"+")
			}
		} else if name != string(p) {
			t.Fatalf("extension %q built %q", p, name)
		}
		sys.Stop()
	}
}

func TestFileCacheViaFacade(t *testing.T) {
	sys := NewSystem(Config{Policy: PolicyStatic, DRAMPages: 256, PMPages: 512})
	defer sys.Stop()
	fc := sys.NewFileCache()
	f := fc.Open("x", 4)
	f.ReadRange(0, 4)
	if f.Resident() != 4 {
		t.Fatal("file cache via facade broken")
	}
}

func TestNUMATopologyViaFacade(t *testing.T) {
	sys := NewSystem(Config{DRAMNodes: []int{64, 64}, PMNodes: []int{256, 256}})
	defer sys.Stop()
	if got := len(sys.Machine().Mem.Nodes); got != 4 {
		t.Fatalf("nodes = %d, want 4", got)
	}
}
