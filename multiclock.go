// Package multiclock is a library reproduction of "MULTI-CLOCK: Dynamic
// Tiering for Hybrid Memory Systems" (HPCA 2022): an execution-driven
// simulator of a DRAM + persistent-memory machine, the MULTI-CLOCK tiering
// policy (per-tier CLOCK aging with a recency+frequency promote list, a
// kpromoted promotion daemon and watermark-driven demotion), the baselines
// it is evaluated against (static tiering, Nimble's recency-only selection,
// AutoTiering-CPM/OPM, PM Memory-mode), and the paper's workloads (YCSB on
// a memcached-like store, the GAPBS graph kernels).
//
// This package is the public facade. Typical use:
//
//	sys := multiclock.NewSystem(multiclock.Config{Policy: multiclock.PolicyMultiClock})
//	store := sys.NewKVStore(20000)
//	client := sys.NewYCSB(store, 20000)
//	client.Load()
//	res := client.Run(multiclock.WorkloadA, 500000)
//	fmt.Println(res.Throughput)
//
// The full evaluation harness is exposed through RunExperiment, and the
// subsystem packages under internal/ carry the implementation.
package multiclock

import (
	"fmt"
	"strings"

	"multiclock/internal/bench"
	"multiclock/internal/core"
	"multiclock/internal/fault"
	"multiclock/internal/graph"
	"multiclock/internal/kvstore"
	"multiclock/internal/lifecycle"
	"multiclock/internal/machine"
	"multiclock/internal/mem"
	"multiclock/internal/metrics"
	"multiclock/internal/pagecache"
	"multiclock/internal/pagetable"
	"multiclock/internal/sim"
	"multiclock/internal/slo"
	"multiclock/internal/timeseries"
	"multiclock/internal/trace"
	"multiclock/internal/traceexport"
	"multiclock/internal/ycsb"
)

// Policy selects the tiering system a machine runs.
type Policy string

// The available tiering policies (§V of the paper).
const (
	PolicyStatic     Policy = "static"
	PolicyMultiClock Policy = "multiclock"
	PolicyNimble     Policy = "nimble"
	PolicyATCPM      Policy = "at-cpm"
	PolicyATOPM      Policy = "at-opm"
	PolicyMemoryMode Policy = "memory-mode"
	// PolicyThermostat is the huge-page-region baseline (Table I's
	// Thermostat row, reimplemented — extension).
	PolicyThermostat Policy = "thermostat"
	// PolicyAMPLFU is AMP's exact-frequency selector (extension).
	PolicyAMPLFU Policy = "amp-lfu"
	// PolicyAMPLRU is AMP's exact-recency selector (extension).
	PolicyAMPLRU Policy = "amp-lru"
	// PolicyAMPRandom is AMP's random selector, the profiling-cost control
	// (extension).
	PolicyAMPRandom Policy = "amp-random"
	// PolicyNomad is Nomad-style non-exclusive tiering: promotion keeps a
	// PM shadow copy so clean pages demote for free (extension).
	PolicyNomad Policy = "nomad"
	// PolicyS3FIFO selects promotion candidates with S3-FIFO's
	// small/main/ghost queues instead of the CLOCK promote ladder
	// (extension).
	PolicyS3FIFO Policy = "s3fifo"
	// PolicyMultiClockGated is MULTI-CLOCK with a TierBPF-style migration
	// bandwidth admission gate in front of kpromoted (extension).
	PolicyMultiClockGated Policy = "multiclock-gated"
	// PolicyNimbleGated is the Nimble baseline behind the same admission
	// gate (extension).
	PolicyNimbleGated Policy = "nimble-gated"
)

// Policies lists every selectable policy.
func Policies() []Policy {
	return []Policy{PolicyStatic, PolicyMultiClock, PolicyNimble, PolicyATCPM, PolicyATOPM, PolicyMemoryMode}
}

// ExtensionPolicies lists the additional baselines this reproduction can
// run that the paper could not deploy (§II-D): Thermostat-style region
// tiering, the AMP selector family, and the competitor policies from
// related work (Nomad shadow tiering, S3-FIFO selection, bandwidth-gated
// admission control).
func ExtensionPolicies() []Policy {
	return []Policy{
		PolicyThermostat, PolicyAMPLFU, PolicyAMPLRU, PolicyAMPRandom,
		PolicyNomad, PolicyS3FIFO, PolicyMultiClockGated, PolicyNimbleGated,
	}
}

// ParsePolicy resolves a policy name (as CLIs accept it) to a Policy,
// rejecting unknown names with the valid set in the error.
func ParsePolicy(s string) (Policy, error) {
	all := append(Policies(), ExtensionPolicies()...)
	for _, p := range all {
		if Policy(s) == p {
			return p, nil
		}
	}
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = string(p)
	}
	return "", fmt.Errorf("multiclock: unknown policy %q (have %s)", s, strings.Join(names, ", "))
}

// Duration is virtual time in nanoseconds (re-exported from the simulator).
type Duration = sim.Duration

// Virtual time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Config describes a simulated hybrid-memory system.
type Config struct {
	// DRAMPages and PMPages size the two tiers in 4 KiB frames. Zero
	// picks the defaults (1 Gi-scale ratio 1:4 at simulation scale).
	DRAMPages, PMPages int

	// DRAMNodes and PMNodes optionally give a full NUMA topology (frame
	// count per node), overriding DRAMPages/PMPages — e.g. a two-socket
	// machine with PM on both sockets is {N,N} and {M,M}, the paper's
	// testbed shape (§V-A).
	DRAMNodes, PMNodes []int

	// Tiers optionally replaces the DRAM/PM pair with an explicit N-tier
	// hierarchy (fastest tier first, e.g. dram over cxl over pm with a
	// durable ssd swap tier last), overriding every sizing field above.
	// Build one from mem.BuiltinTierSpec or parse the CLI -tiers syntax
	// with cliutil.ParseTierSpec.
	Tiers *TierTopology

	// Policy selects the tiering system; default PolicyMultiClock.
	Policy Policy

	// ScanInterval is the promotion daemon period (the paper's kpromoted
	// runs every 1 s, §V-E). Zero uses 1 s of virtual time.
	ScanInterval Duration

	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64

	// OpCost is CPU time charged per workload operation.
	OpCost Duration

	// MultiClock allows overriding the full policy configuration when
	// Policy == PolicyMultiClock; nil uses the paper defaults.
	MultiClock *core.Config

	// Chaos configures deterministic fault injection (pinned-page and
	// target-denied migration failures, allocation storms, PM slowdown
	// windows, daemon overruns). The zero value injects nothing and leaves
	// the simulation bit-for-bit identical to a fault-free build.
	Chaos FaultConfig
}

// TierTopology is an ordered memory hierarchy, fastest tier first
// (re-export of mem.Topology).
type TierTopology = mem.Topology

// TierSpec describes one tier of a TierTopology (re-export).
type TierSpec = mem.TierSpec

// FaultConfig describes a fault-injection campaign (re-export).
type FaultConfig = fault.Config

// ParseFaultSpec parses the CLI fault specification "seed,rate" into a
// uniform-rate FaultConfig; the empty string disables injection.
func ParseFaultSpec(s string) (FaultConfig, error) { return fault.ParseSpec(s) }

// System is a running simulated machine plus its tiering policy.
type System struct {
	m        *machine.Machine
	pol      machine.Policy
	samplers []*timeseries.Sampler
	metrics  *metrics.Collector
	slos     []*slo.Engine
}

// NewSystem builds a machine per cfg with the policy attached and its
// daemons running.
func NewSystem(cfg Config) *System {
	if cfg.Policy == "" {
		cfg.Policy = PolicyMultiClock
	}
	// Interval defaulting lives in bench.NewPolicy (and core.New for the
	// custom-config path): a non-positive ScanInterval becomes the paper's
	// 1 s everywhere, with no facade-local copy of the rule.
	var pol machine.Policy
	if cfg.Policy == PolicyMultiClock && cfg.MultiClock != nil {
		c := *cfg.MultiClock
		if c.ScanInterval <= 0 {
			c.ScanInterval = cfg.ScanInterval
		}
		pol = core.New(c)
	} else {
		p, err := bench.NewPolicy(string(cfg.Policy), cfg.ScanInterval)
		if err != nil {
			panic(fmt.Sprintf("multiclock: %v", err))
		}
		pol = p
	}

	mcfg := machine.DefaultConfig()
	if cfg.DRAMPages > 0 {
		mcfg.Mem.DRAMNodes = []int{cfg.DRAMPages}
	}
	if cfg.PMPages > 0 {
		mcfg.Mem.PMNodes = []int{cfg.PMPages}
	}
	if len(cfg.DRAMNodes) > 0 {
		mcfg.Mem.DRAMNodes = cfg.DRAMNodes
	}
	if len(cfg.PMNodes) > 0 {
		mcfg.Mem.PMNodes = cfg.PMNodes
	}
	if cfg.Tiers != nil {
		mcfg.Mem.Topology = cfg.Tiers
	}
	if cfg.Seed != 0 {
		mcfg.Seed = cfg.Seed
	}
	if cfg.OpCost > 0 {
		mcfg.OpCost = cfg.OpCost
	}
	mcfg.Faults = cfg.Chaos
	return &System{m: machine.New(mcfg, pol), pol: pol}
}

// Machine exposes the underlying simulated machine for advanced use
// (custom workloads, observers, raw accesses).
func (s *System) Machine() *machine.Machine { return s.m }

// PolicyName reports the active policy.
func (s *System) PolicyName() string { return s.pol.Name() }

// Elapsed returns total virtual time.
func (s *System) Elapsed() Duration { return s.m.Elapsed() }

// Counters returns the memory-system event counters.
func (s *System) Counters() *mem.Counters { return &s.m.Mem.Counters }

// DRAMHitRatio reports the fraction of memory accesses served by DRAM.
func (s *System) DRAMHitRatio() float64 { return s.m.Mem.Counters.DRAMHitRatio() }

// CheckInvariants verifies the machine's conservation laws (frame
// accounting, LRU membership, page-table mapping); nil when consistent.
func (s *System) CheckInvariants() error { return s.m.CheckInvariants() }

// FaultReport summarizes injected faults, or "" when injection is off.
func (s *System) FaultReport() string {
	if s.m.Faults == nil {
		return ""
	}
	return s.m.Faults.Counters.String()
}

// Stop halts the policy's daemons (for long-lived processes building many
// systems). Any policy with background work implements machine.Stopper;
// policies without daemons have nothing to stop.
func (s *System) Stop() {
	if st, ok := s.pol.(machine.Stopper); ok {
		st.Stop()
	}
	for _, sp := range s.samplers {
		sp.Stop()
	}
	for _, e := range s.slos {
		e.Stop()
	}
}

// KVStore is the memcached-like back-end (re-export).
type KVStore = kvstore.Store

// NewKVStore creates a store sized for about items records, with the
// evaluation's item-access cost model.
func (s *System) NewKVStore(items int) *KVStore {
	cfg := kvstore.DefaultConfig(items)
	cfg.ItemTouches = 8
	return kvstore.New(s.m, cfg)
}

// YCSB workload types (re-exports).
type (
	// Workload is a YCSB operation mix.
	Workload = ycsb.Workload
	// YCSBClient drives a store with YCSB workloads.
	YCSBClient = ycsb.Client
	// RunResult reports one workload execution.
	RunResult = ycsb.RunResult
)

// The standard YCSB workloads plus the paper's workload W.
var (
	WorkloadA = ycsb.WorkloadA
	WorkloadB = ycsb.WorkloadB
	WorkloadC = ycsb.WorkloadC
	WorkloadD = ycsb.WorkloadD
	WorkloadE = ycsb.WorkloadE
	WorkloadF = ycsb.WorkloadF
	WorkloadW = ycsb.WorkloadW
)

// PaperSequence is the prescribed YCSB execution order (§V-B).
var PaperSequence = ycsb.PaperSequence

// NewYCSB creates a YCSB client over store with records keys.
func (s *System) NewYCSB(store *KVStore, records int64) *YCSBClient {
	return ycsb.NewClient(s.m, store, ycsb.DefaultClientConfig(records))
}

// Graph types (re-exports).
type (
	// Graph is a CSR graph in simulated memory with the GAPBS kernels as
	// methods.
	Graph = graph.Graph
	// GraphConfig shapes a synthetic graph.
	GraphConfig = graph.GenConfig
)

// NewGraph generates and loads a synthetic graph on the system.
func (s *System) NewGraph(cfg GraphConfig) *Graph {
	return graph.Generate(s.m, cfg)
}

// Observer re-exports for telemetry.
type (
	// Observer receives page-level simulation events (accesses, migrations,
	// faults). Attach any number of observers to a System; they are invoked
	// in attach order and never advance virtual time.
	Observer = machine.Observer
	// PromotionTracker measures promotions and re-access (Figs. 8–9).
	PromotionTracker = trace.PromotionTracker
	// Heatmap records sampled page access intensity (Fig. 1).
	Heatmap = trace.Heatmap
	// Metrics is the virtual-clock-native metrics collector: counters,
	// gauges, log-bucketed histograms and an optional structured event
	// trace, with deterministic JSON/CSV export.
	Metrics = metrics.Collector
	// MetricsRun is one labeled metrics snapshot (Metrics.Run), the unit
	// ExportMetricsJSON serializes.
	MetricsRun = metrics.RunExport
)

// Attach registers an observer alongside any already attached and returns
// a function that detaches exactly it. Multiple observers (a
// PromotionTracker, a Heatmap, a Metrics collector, ...) coexist; each
// sees every event.
func (s *System) Attach(o Observer) (detach func()) {
	return s.m.Attach(o)
}

// NewPromotionTracker builds a promotion tracker with the given window,
// bound to this system but not yet attached; pass it to Attach.
func (s *System) NewPromotionTracker(window Duration) *PromotionTracker {
	return trace.NewPromotionTracker(window).Bind(s.m)
}

// EnableMetrics installs a metrics collector on the system and returns it.
// traceEvents sizes the structured event ring (0 disables event tracing;
// counters and histograms still record). The collector observes passively —
// an instrumented run's simulation timeline is bit-for-bit identical to an
// uninstrumented one. Export with ExportMetricsJSON or the collector's Run
// snapshot.
func (s *System) EnableMetrics(traceEvents int) *Metrics {
	c := metrics.NewCollector(metrics.NewRegistry(traceEvents)).Bind(s.m)
	s.m.SetMetrics(c)
	s.Attach(c)
	s.metrics = c
	return c
}

// ExportMetricsJSON renders one or more labeled metric snapshots (from
// Metrics.Run) as the canonical deterministic JSON document.
func ExportMetricsJSON(runs ...metrics.RunExport) ([]byte, error) {
	return metrics.ExportJSON(runs...)
}

// SLO re-exports: declarative virtual-time latency objectives with
// Google-SRE multi-window multi-burn-rate alerting.
type (
	// SLOEngine evaluates a parsed objective spec against the metrics
	// collector's histograms on fixed virtual-time windows. Passive like
	// every observability layer: it never advances the clock.
	SLOEngine = slo.Engine
	// SLOSpec is a parsed set of objectives (see ParseSLOSpec).
	SLOSpec = slo.Spec
	// SLOResult is the exported evaluation section a MetricsRun carries
	// (run.SLO = engine.Export()).
	SLOResult = metrics.SLOExport
)

// ParseSLOSpec parses a declarative objective spec, e.g.
// "p99(access_latency_dram_read_ns) < 400ns over 10ms, 99.9%"; objectives
// are ';'-separated and the compliance target defaults to 99.9%.
func ParseSLOSpec(spec string) (*SLOSpec, error) { return slo.Parse(spec) }

// EnableSLO parses spec and starts an SLO engine over the system's metrics
// registry; EnableMetrics must have run first (the engine evaluates the
// collector's histograms). Attach the result to a MetricsRun via
// run.SLO = engine.Export(); render it with FormatSLOReport.
func (s *System) EnableSLO(spec string) (*SLOEngine, error) {
	if s.metrics == nil {
		return nil, fmt.Errorf("multiclock: EnableSLO needs EnableMetrics first")
	}
	sp, err := slo.Parse(spec)
	if err != nil {
		return nil, err
	}
	eng := slo.New(s.m.Clock, s.metrics.Registry(), sp, 0)
	s.slos = append(s.slos, eng)
	return eng, nil
}

// FormatSLOReport renders one run's SLO section as the human-readable
// compliance/burn-rate report (the same rendering `mcmetrics slo` prints).
func FormatSLOReport(label string, res *SLOResult) string { return slo.Format(label, res) }

// EnableTraceRecording turns on the extra recording that only the Perfetto
// trace export consumes — today the injected-fault window log (topology
// needs no recording). Call before running the workload; attach the
// sections afterwards with AttachTraceSections.
func (s *System) EnableTraceRecording() {
	s.m.Faults.EnableWindowLog(0)
}

// AttachTraceSections fills run's node→tier topology and injected-fault
// window sections from the system, so ExportPerfettoJSON can label
// migration tracks and draw fault windows.
func (s *System) AttachTraceSections(run *MetricsRun) {
	run.Topology = metrics.TopologyOf(s.m)
	run.Faults = metrics.FaultsOf(s.m)
}

// ExportPerfettoJSON renders labeled metric snapshots as one deterministic
// Chrome-trace-event JSON document that opens in ui.perfetto.dev, merging
// migrations, daemon passes, page faults, lifecycle spans, injected-fault
// windows and SLO burn-rate alerts onto the virtual-time timeline.
func ExportPerfettoJSON(runs ...metrics.RunExport) []byte {
	return traceexport.Build(runs)
}

// Observability re-exports: per-page lifecycle span tracing and windowed
// time-series sampling.
type (
	// LifecycleTracer records every Fig. 4 transition of sampled pages as
	// virtual-time-stamped span events with typed reason codes.
	LifecycleTracer = lifecycle.Tracer
	// LifecycleConfig bounds the tracer (sampling modulus, page and
	// per-page event caps).
	LifecycleConfig = lifecycle.Config
	// SeriesSampler snapshots per-node occupancy and windowed vmstat
	// deltas on a fixed virtual-time period.
	SeriesSampler = timeseries.Sampler
)

// EnableLifecycle installs a per-page span tracer on the system and returns
// it. Zero config fields take defaults (trace every page, 4096 pages, 512
// events per page). Like EnableMetrics, the tracer observes passively: the
// simulated timeline is unchanged. Attach the export to a MetricsRun via
// run.Lifecycle = tracer.Export().
func (s *System) EnableLifecycle(cfg LifecycleConfig) *LifecycleTracer {
	return lifecycle.New(cfg).Bind(s.m)
}

// EnableTimeSeries starts a windowed occupancy sampler on the system's
// virtual clock and returns it. Attach the export to a MetricsRun via
// run.Series = sampler.Export(). Stop the sampler (or the system) before
// draining the clock if sampling should end earlier.
func (s *System) EnableTimeSeries(window Duration) *SeriesSampler {
	sp := timeseries.New(s.m, window, 0)
	s.samplers = append(s.samplers, sp)
	return sp
}

// File-backed memory (re-exports): files whose cached pages ride the file
// LRU lists through the supervised access path.
type (
	// FileCache is a set of simulated files sharing a page cache.
	FileCache = pagecache.Cache
	// File is one simulated file.
	File = pagecache.File
)

// NewFileCache creates a page cache on the system.
func (s *System) NewFileCache() *FileCache { return pagecache.New(s.m) }

// VPN re-exports the virtual page number type for custom workloads.
type VPN = pagetable.VPN

// Experiments lists the regenerable tables and figures.
func Experiments() []string { return bench.Names() }

// RunExperiment regenerates one of the paper's tables or figures ("fig5",
// "fig10", "table1", "ablation-ratio", ...) and returns its rendering.
// Quick mode compresses the run ~10× further for CI-speed executions.
func RunExperiment(name string, quick bool) (string, error) {
	return bench.Run(name, bench.Options{Quick: quick, Seed: 1})
}
