module multiclock

go 1.22
