package multiclock

import (
	"bytes"
	"strings"
	"testing"

	"multiclock/internal/metrics"
)

// ycsbObserved drives workload A with the full observability stack
// (metrics + time series + lifecycle spans) and returns the assembled run.
func ycsbObserved(seed uint64) (metrics.RunExport, *System) {
	sys := NewSystem(Config{DRAMPages: 256, PMPages: 1024, ScanInterval: 5 * Millisecond, Seed: seed})
	col := sys.EnableMetrics(0)
	sampler := sys.EnableTimeSeries(10 * Millisecond)
	tracer := sys.EnableLifecycle(LifecycleConfig{SampleMod: 4})
	store := sys.NewKVStore(3000)
	client := sys.NewYCSB(store, 3000)
	client.Load()
	client.Run(WorkloadA, 50000)
	sys.Stop()
	run := col.Run("ycsb-a")
	run.Series = sampler.Export()
	run.Lifecycle = tracer.Export()
	return run, sys
}

// TestObservabilityDisabledIsNoOp is the PR's core invariant: enabling the
// span tracer and the windowed sampler must not move the simulation — the
// virtual timeline and every vmstat counter match an uninstrumented run
// bit for bit.
func TestObservabilityDisabledIsNoOp(t *testing.T) {
	plain := NewSystem(Config{DRAMPages: 256, PMPages: 1024, ScanInterval: 5 * Millisecond, Seed: 3})
	store := plain.NewKVStore(3000)
	client := plain.NewYCSB(store, 3000)
	client.Load()
	client.Run(WorkloadA, 50000)
	plain.Stop()

	_, inst := ycsbObserved(3)
	if plain.Elapsed() != inst.Elapsed() {
		t.Fatalf("observability moved virtual time: %v vs %v", plain.Elapsed(), inst.Elapsed())
	}
	var names []string
	var want []int64
	plain.Counters().Each(func(name string, v int64) {
		names = append(names, name)
		want = append(want, v)
	})
	i := 0
	inst.Counters().Each(func(name string, v int64) {
		if name != names[i] || v != want[i] {
			t.Fatalf("counter %s: %d instrumented vs %d plain", name, v, want[i])
		}
		i++
	})
}

// TestObservabilityExportGolden: two same-seed instrumented runs must export
// byte-identical JSON including the new sections, the document must
// validate, and both sections must carry data.
func TestObservabilityExportGolden(t *testing.T) {
	run1, _ := ycsbObserved(7)
	run2, _ := ycsbObserved(7)
	b1, err := ExportMetricsJSON(run1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := ExportMetricsJSON(run2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same-seed observability exports differ")
	}
	if !strings.Contains(string(b1), `"series"`) || !strings.Contains(string(b1), `"lifecycle"`) {
		t.Fatal("export is missing the observability sections")
	}
	ex, err := metrics.ReadExport(b1)
	if err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	r := ex.Runs[0]
	if r.Series == nil || len(r.Series.Windows) == 0 {
		t.Fatal("series section empty")
	}
	if r.Lifecycle == nil || len(r.Lifecycle.Pages) == 0 {
		t.Fatal("lifecycle section empty")
	}
	// The workload is oversubscribed, so traced pages must include real
	// tier flow: at least one page with a successful migration.
	var migrated bool
	for _, p := range r.Lifecycle.Pages {
		if p.Migrations > 0 {
			migrated = true
			break
		}
	}
	if !migrated {
		t.Fatal("no traced page migrated on an oversubscribed multiclock system")
	}
	// Windowed deltas must reconcile with the run's cumulative vmstat.
	var promos int64
	for _, w := range r.Series.Windows {
		promos += w.Promotions
	}
	var total int64
	for _, c := range r.Vmstat {
		if c.Name == "promotions" {
			total = c.Value
		}
	}
	if promos != total {
		t.Fatalf("windowed promotions %d != cumulative %d", promos, total)
	}
}

// TestLifecycleSectionOmittedWhenOff: a run without the new sections must
// serialize exactly as before this PR (no "series"/"lifecycle" keys), so old
// goldens remain byte-stable.
func TestLifecycleSectionOmittedWhenOff(t *testing.T) {
	sys := NewSystem(Config{DRAMPages: 256, PMPages: 1024, Seed: 5})
	defer sys.Stop()
	col := sys.EnableMetrics(0)
	store := sys.NewKVStore(1000)
	client := sys.NewYCSB(store, 1000)
	client.Load()
	b, err := ExportMetricsJSON(col.Run("plain"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"series"`) || strings.Contains(string(b), `"lifecycle"`) {
		t.Fatal("disabled observability leaked into the export")
	}
}
